//! Memoized verdict cache for live-update traffic.
//!
//! The paper's motivation for database technology (§4.2) is that
//! "policies of a website will not stay static forever" — yet between
//! two updates, the same preference matched against the same policy
//! always produces the same verdict. This module memoizes that fact:
//! a sharded, LRU-bounded map from
//!
//! ```text
//! (ruleset fingerprint × policy id × policy version × engine × executor knobs)
//! ```
//!
//! to the [`Verdict`] the engine produced. The fingerprint is the same
//! 64-bit structural hash the translation cache uses
//! ([`crate::translation::TranslationCache::fingerprint`]); the policy
//! version is the per-name counter [`crate::PolicyServer`] bumps on
//! every install/replace/remove (so a re-shred of policy P silently
//! orphans P's old entries even before they are swept); the knob word
//! captures the executor toggles (planner, columnar, decorrelation
//! threshold) so A/B knob comparisons never alias. A hit answers a
//! match without touching minidb at all.
//!
//! Invalidation is precise: removing or re-shredding policy P evicts
//! only P's entries ([`VerdictCache::invalidate_policy`]); the
//! ruleset-wide [`VerdictCache::flush`] is reserved for schema or
//! dialect changes. Capacity 0 disables the cache entirely (the
//! default for a fresh server — deployments and the churn workload
//! opt in).
//!
//! ## Sharing and copy-on-write forks
//!
//! Cloning a cache (as [`crate::PolicyServer::clone_state`] does)
//! shares the underlying shards, so a [`MatchPool`] snapshot and the
//! server it came from warm each other — safe while their catalogs are
//! identical, because every key pins a policy id and version. The
//! moment a server *mutates its catalog* it must call
//! [`VerdictCache::detach_for_update`] first: if the cache is shared,
//! the server splits off a private warm copy, so a fork's installs,
//! removals, and invalidations are never visible to its parent (and
//! two forks can never poison each other through reused policy ids).
//!
//! [`MatchPool`]: crate::concurrent::MatchPool

use crate::server::EngineKind;
use p3p_appel::engine::Verdict;
use p3p_telemetry::metrics::{self, Counter, Gauge};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked shards. Keys spread by hash, so
/// concurrent matchers on a [`MatchPool`](crate::concurrent::MatchPool)
/// snapshot rarely contend.
const SHARDS: usize = 16;

/// The identity of one memoized verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// Structural fingerprint of the APPEL ruleset (shared with the
    /// translation cache).
    pub fingerprint: u64,
    /// The installed policy's id (unique within a server lineage).
    pub policy_id: i64,
    /// The per-name version counter at match time.
    pub policy_version: u64,
    /// Which engine produced the verdict.
    pub engine: EngineKind,
    /// Executor-knob word (planner/columnar/decorrelation) so knob
    /// variants never alias each other's verdicts.
    pub knobs: u64,
}

impl VerdictKey {
    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// Hit/miss/eviction/invalidation counters plus current size, per
/// cache lineage (the Prometheus `p3p_verdict_cache_*` counters
/// aggregate across every cache in the process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub entries: usize,
}

impl VerdictCacheStats {
    /// Hits over consulted lookups (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: metrics::counter("p3p_verdict_cache_hits_total"),
        misses: metrics::counter("p3p_verdict_cache_misses_total"),
        evictions: metrics::counter("p3p_verdict_cache_evictions_total"),
        invalidations: metrics::counter("p3p_verdict_cache_invalidations_total"),
    })
}

/// The `p3p_catalog_epoch` gauge: the most recent catalog epoch any
/// server in the process reached.
pub(crate) fn epoch_gauge() -> &'static Arc<Gauge> {
    static GAUGE: OnceLock<Arc<Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| metrics::gauge("p3p_catalog_epoch"))
}

#[derive(Debug)]
struct Entry {
    verdict: Verdict,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<VerdictKey, Entry>,
    tick: u64,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Mutex<Shard>>,
    /// Total capacity across shards; 0 disables the cache.
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Inner {
    fn with_capacity(capacity: usize) -> Inner {
        Inner {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity: AtomicUsize::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn per_shard_capacity(&self) -> usize {
        (self.capacity.load(Ordering::Relaxed) / SHARDS).max(1)
    }

    /// A warm private copy: contents, capacity, and counters carry
    /// over; the new inner shares nothing with this one.
    fn deep_copy(&self) -> Inner {
        let copy = Inner::with_capacity(self.capacity.load(Ordering::Relaxed));
        for (from, to) in self.shards.iter().zip(&copy.shards) {
            let from = from.lock().unwrap();
            let mut to = to.lock().unwrap();
            to.tick = from.tick;
            to.entries = from
                .entries
                .iter()
                .map(|(k, e)| {
                    (
                        *k,
                        Entry {
                            verdict: e.verdict.clone(),
                            last_used: e.last_used,
                        },
                    )
                })
                .collect();
        }
        copy.hits
            .store(self.hits.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.misses
            .store(self.misses.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.evictions
            .store(self.evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.invalidations.store(
            self.invalidations.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        copy
    }
}

/// Sharded LRU map from [`VerdictKey`] to [`Verdict`]. Cloning shares
/// the shards (see the module docs for the copy-on-write contract).
#[derive(Debug, Clone)]
pub struct VerdictCache {
    inner: Arc<Inner>,
}

impl Default for VerdictCache {
    /// Disabled (capacity 0) — callers opt in with
    /// [`VerdictCache::set_capacity`].
    fn default() -> Self {
        VerdictCache {
            inner: Arc::new(Inner::with_capacity(0)),
        }
    }
}

impl VerdictCache {
    /// A cache bounded to `capacity` entries in total.
    pub fn with_capacity(capacity: usize) -> VerdictCache {
        VerdictCache {
            inner: Arc::new(Inner::with_capacity(capacity)),
        }
    }

    /// True when lookups can ever hit (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity() > 0
    }

    /// Total entry budget across shards.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Adjust the budget. 0 disables lookups and inserts; oversized
    /// contents drain through normal LRU eviction, except that setting
    /// 0 clears eagerly (a disabled cache must never serve a hit).
    pub fn set_capacity(&self, capacity: usize) {
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        if capacity == 0 {
            for shard in &self.inner.shards {
                shard.lock().unwrap().entries.clear();
            }
        }
    }

    /// Split off a private warm copy if the shards are shared with any
    /// other holder. Servers call this before every catalog mutation,
    /// which is what keeps forks and parents from seeing each other's
    /// cache mutations (and from aliasing independently assigned
    /// policy ids).
    pub fn detach_for_update(&mut self) {
        if Arc::strong_count(&self.inner) > 1 {
            self.inner = Arc::new(self.inner.deep_copy());
        }
    }

    /// Look up a memoized verdict. Counts a hit or a miss; a disabled
    /// cache returns `None` without counting.
    pub fn get(&self, key: &VerdictKey) -> Option<Verdict> {
        if !self.is_enabled() {
            return None;
        }
        let mut shard = self.inner.shards[key.shard()].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let verdict = entry.verdict.clone();
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().hits.inc();
                Some(verdict)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                cache_metrics().misses.inc();
                None
            }
        }
    }

    /// Memoize a verdict, evicting the shard's least recently used
    /// entry when the shard is at budget. No-op when disabled.
    pub fn insert(&self, key: VerdictKey, verdict: Verdict) {
        if !self.is_enabled() {
            return;
        }
        let per_shard = self.inner.per_shard_capacity();
        let mut shard = self.inner.shards[key.shard()].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= per_shard && !shard.entries.contains_key(&key) {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&oldest);
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                cache_metrics().evictions.inc();
            }
        }
        shard.entries.insert(
            key,
            Entry {
                verdict,
                last_used: tick,
            },
        );
    }

    /// Evict every entry of one policy (precise invalidation on
    /// re-shred/remove). Returns how many entries were dropped.
    pub fn invalidate_policy(&self, policy_id: i64) -> usize {
        let mut dropped = 0;
        for shard in &self.inner.shards {
            let mut shard = shard.lock().unwrap();
            let before = shard.entries.len();
            shard.entries.retain(|k, _| k.policy_id != policy_id);
            dropped += before - shard.entries.len();
        }
        if dropped > 0 {
            self.inner
                .invalidations
                .fetch_add(dropped as u64, Ordering::Relaxed);
            cache_metrics().invalidations.add(dropped as u64);
        }
        dropped
    }

    /// Ruleset-wide flush — reserved for schema or dialect changes
    /// that can move every verdict at once. Returns how many entries
    /// were dropped.
    pub fn flush(&self) -> usize {
        let mut dropped = 0;
        for shard in &self.inner.shards {
            let mut shard = shard.lock().unwrap();
            dropped += shard.entries.len();
            shard.entries.clear();
        }
        if dropped > 0 {
            self.inner
                .invalidations
                .fetch_add(dropped as u64, Ordering::Relaxed);
            cache_metrics().invalidations.add(dropped as u64);
        }
        dropped
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot for this cache lineage.
    pub fn stats(&self) -> VerdictCacheStats {
        VerdictCacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            invalidations: self.inner.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3p_appel::model::Behavior;

    fn key(fingerprint: u64, policy_id: i64, version: u64) -> VerdictKey {
        VerdictKey {
            fingerprint,
            policy_id,
            policy_version: version,
            engine: EngineKind::Sql,
            knobs: 0,
        }
    }

    fn verdict(behavior: Behavior) -> Verdict {
        Verdict {
            behavior,
            fired_rule: Some(0),
        }
    }

    #[test]
    fn disabled_cache_never_hits_or_counts() {
        let cache = VerdictCache::default();
        assert!(!cache.is_enabled());
        cache.insert(key(1, 1, 1), verdict(Behavior::Block));
        assert_eq!(cache.get(&key(1, 1, 1)), None);
        assert_eq!(cache.stats(), VerdictCacheStats::default());
    }

    #[test]
    fn second_lookup_hits_and_counts() {
        let cache = VerdictCache::with_capacity(64);
        assert_eq!(cache.get(&key(1, 1, 1)), None);
        cache.insert(key(1, 1, 1), verdict(Behavior::Request));
        assert_eq!(cache.get(&key(1, 1, 1)), Some(verdict(Behavior::Request)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn version_and_knob_changes_are_distinct_keys() {
        let cache = VerdictCache::with_capacity(64);
        cache.insert(key(1, 1, 1), verdict(Behavior::Request));
        assert_eq!(cache.get(&key(1, 1, 2)), None, "new version must miss");
        let mut knobbed = key(1, 1, 1);
        knobbed.knobs = 1;
        assert_eq!(cache.get(&knobbed), None, "knob variant must miss");
        let mut other_engine = key(1, 1, 1);
        other_engine.engine = EngineKind::Native;
        assert_eq!(cache.get(&other_engine), None, "engine variant must miss");
    }

    #[test]
    fn invalidation_is_per_policy() {
        let cache = VerdictCache::with_capacity(64);
        for fp in 0..4 {
            cache.insert(key(fp, 1, 1), verdict(Behavior::Block));
            cache.insert(key(fp, 2, 1), verdict(Behavior::Request));
        }
        assert_eq!(cache.invalidate_policy(1), 4);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(&key(0, 1, 1)), None);
        assert_eq!(cache.get(&key(0, 2, 1)), Some(verdict(Behavior::Request)));
        assert_eq!(cache.stats().invalidations, 4);
    }

    #[test]
    fn flush_drops_everything() {
        let cache = VerdictCache::with_capacity(64);
        cache.insert(key(1, 1, 1), verdict(Behavior::Block));
        cache.insert(key(2, 2, 1), verdict(Behavior::Request));
        assert_eq!(cache.flush(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn lru_eviction_respects_recency_within_a_shard() {
        // Capacity SHARDS gives each shard a budget of exactly one
        // entry, so two keys in the same shard must evict.
        let cache = VerdictCache::with_capacity(SHARDS);
        let a = key(1, 1, 1);
        let mut b = a;
        b.fingerprint = 2;
        // Force both keys into the same shard by brute-force search.
        while b.shard() != a.shard() {
            b.fingerprint += 1;
        }
        cache.insert(a, verdict(Behavior::Block));
        cache.insert(b, verdict(Behavior::Request));
        assert_eq!(cache.get(&a), None, "older entry evicted");
        assert_eq!(cache.get(&b), Some(verdict(Behavior::Request)));
        assert_eq!(cache.stats().evictions, 1);
        // Re-inserting an existing key at budget must not evict it.
        cache.insert(b, verdict(Behavior::Request));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clones_share_until_detached() {
        let cache = VerdictCache::with_capacity(64);
        let mut fork = cache.clone();
        cache.insert(key(1, 1, 1), verdict(Behavior::Block));
        assert_eq!(
            fork.get(&key(1, 1, 1)),
            Some(verdict(Behavior::Block)),
            "clones share warm entries"
        );
        fork.detach_for_update();
        fork.invalidate_policy(1);
        assert_eq!(fork.get(&key(1, 1, 1)), None, "fork dropped its copy");
        assert_eq!(
            cache.get(&key(1, 1, 1)),
            Some(verdict(Behavior::Block)),
            "parent keeps its entry after the fork's invalidation"
        );
        // Inserts after the detach stay private in both directions.
        fork.insert(key(9, 9, 1), verdict(Behavior::Request));
        assert_eq!(cache.get(&key(9, 9, 1)), None);
    }

    #[test]
    fn detach_is_a_no_op_for_a_sole_owner() {
        let mut cache = VerdictCache::with_capacity(64);
        cache.insert(key(1, 1, 1), verdict(Behavior::Block));
        let before = Arc::as_ptr(&cache.inner);
        cache.detach_for_update();
        assert_eq!(before, Arc::as_ptr(&cache.inner), "no copy when unshared");
        assert_eq!(cache.get(&key(1, 1, 1)), Some(verdict(Behavior::Block)));
    }

    #[test]
    fn disabling_clears_eagerly() {
        let cache = VerdictCache::with_capacity(64);
        cache.insert(key(1, 1, 1), verdict(Behavior::Block));
        cache.set_capacity(0);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, 1, 1)), None);
    }
}
