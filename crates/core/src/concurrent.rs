//! Concurrent deployment of the policy server.
//!
//! A deployed P3P server checks preferences for many visitors at once
//! (the JRC proxy of §3.3 served whole user populations). Two tools are
//! provided:
//!
//! * [`SharedServer`] — a lock-guarded server for the install path and
//!   occasional exclusive work;
//! * [`MatchPool`] — read-mostly scale-out: each worker matches against
//!   an immutable snapshot of the installed state, so visitor checks
//!   run fully in parallel (policies change rarely; snapshots are
//!   refreshed on install, mirroring how read replicas track a
//!   primary).

use crate::error::ServerError;
use crate::server::{EngineKind, MatchOutcome, PolicyServer, Target};
use p3p_appel::engine::Verdict;
use p3p_appel::model::Ruleset;
use p3p_policy::model::Policy;
use std::sync::Arc;
use std::sync::{Mutex, RwLock};

/// A thread-safe handle around one [`PolicyServer`].
#[derive(Clone)]
pub struct SharedServer {
    inner: Arc<Mutex<PolicyServer>>,
}

impl SharedServer {
    /// Wrap a server.
    pub fn new(server: PolicyServer) -> SharedServer {
        SharedServer {
            inner: Arc::new(Mutex::new(server)),
        }
    }

    /// Install a policy (exclusive).
    pub fn install_policy(&self, policy: &Policy) -> Result<i64, ServerError> {
        self.inner.lock().unwrap().install_policy(policy)
    }

    /// Match a preference (exclusive — use [`MatchPool`] to match many
    /// visitors in parallel without serializing on the lock).
    pub fn match_preference(
        &self,
        ruleset: &Ruleset,
        target: Target<'_>,
        engine: EngineKind,
    ) -> Result<MatchOutcome, ServerError> {
        self.inner
            .lock()
            .unwrap()
            .match_preference(ruleset, target, engine)
    }

    /// Run arbitrary exclusive work against the server.
    pub fn with<R>(&self, f: impl FnOnce(&mut PolicyServer) -> R) -> R {
        f(&mut self.inner.lock().unwrap())
    }

    /// The primary's current catalog epoch (bumped by every install,
    /// removal, and version upgrade).
    pub fn catalog_epoch(&self) -> u64 {
        self.inner.lock().unwrap().catalog_epoch()
    }

    /// Snapshot the current state for a [`MatchPool`].
    pub fn snapshot(&self) -> PolicyServer {
        self.inner.lock().unwrap().clone_state()
    }
}

/// Read-mostly matching: a pool of immutable snapshots, one per worker.
pub struct MatchPool {
    snapshot: RwLock<Arc<PolicyServer>>,
}

impl MatchPool {
    /// Build a pool from the current state of a shared server.
    pub fn new(shared: &SharedServer) -> MatchPool {
        MatchPool {
            snapshot: RwLock::new(Arc::new(shared.snapshot())),
        }
    }

    /// Refresh the snapshot after installs (cheap for readers; the old
    /// snapshot stays alive until its last match finishes).
    pub fn refresh(&self, shared: &SharedServer) {
        *self.snapshot.write().unwrap() = Arc::new(shared.snapshot());
    }

    /// The catalog epoch the pool's current snapshot is pinned to.
    /// Matches answered by this pool report exactly this epoch in
    /// [`MatchOutcome::epoch`] until the next [`MatchPool::refresh`] —
    /// the MVCC-style guarantee that concurrent installs on the primary
    /// never tear a reader's view.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot.read().unwrap().catalog_epoch()
    }

    /// Pin the current snapshot: an `Arc` bump that callers hold when a
    /// whole unit of work must see one catalog view across many calls —
    /// e.g. a distributed worker running every shard of a sweep against
    /// the same epoch even if the pool is refreshed mid-sweep.
    pub fn pin(&self) -> Arc<PolicyServer> {
        self.snapshot.read().unwrap().clone()
    }

    /// Match against the snapshot. Each call clones the snapshot handle
    /// (an `Arc` bump) and matches zero-copy: the SQL engines bind the
    /// policy id as a parameter and the XTable engine stages into a
    /// copy-on-write fork, so no per-call deep copy of server state is
    /// made and any number of threads can match simultaneously.
    pub fn match_preference(
        &self,
        ruleset: &Ruleset,
        target: Target<'_>,
        engine: EngineKind,
    ) -> Result<MatchOutcome, ServerError> {
        let snapshot = self.snapshot.read().unwrap().clone();
        snapshot.match_preference_snapshot(ruleset, target, engine)
    }

    /// Set-at-a-time corpus matching sharded across threads: the
    /// installed-policy roster (already in name order) is split into
    /// `shards` contiguous chunks and each chunk runs
    /// [`PolicyServer::match_corpus_subset`] on its own thread against
    /// the shared snapshot. Chunks of a sorted roster concatenate back
    /// into name order, so the result is identical to a single-threaded
    /// [`PolicyServer::match_corpus`] call.
    pub fn match_corpus(
        &self,
        ruleset: &Ruleset,
        engine: EngineKind,
        shards: usize,
    ) -> Result<Vec<(String, Verdict)>, ServerError> {
        self.match_corpus_pinned(ruleset, engine, shards)
            .map(|(_, verdicts)| verdicts)
    }

    /// [`MatchPool::match_corpus`] that also reports the catalog epoch
    /// the whole sweep was pinned to: every shard matches against the
    /// same snapshot `Arc`, so one epoch explains every verdict even
    /// while the primary installs and removes policies concurrently.
    pub fn match_corpus_pinned(
        &self,
        ruleset: &Ruleset,
        engine: EngineKind,
        shards: usize,
    ) -> Result<(u64, Vec<(String, Verdict)>), ServerError> {
        let snapshot = self.snapshot.read().unwrap().clone();
        let epoch = snapshot.catalog_epoch();
        let names = snapshot.policy_names();
        let shards = shards.clamp(1, names.len().max(1));
        if shards <= 1 {
            return Ok((epoch, snapshot.match_corpus(ruleset, engine)?));
        }
        let chunk = names.len().div_ceil(shards);
        let _sweep = p3p_telemetry::span!("sharded_sweep", engine = engine.metric_label());
        let results: Vec<Result<Vec<(String, Verdict)>, ServerError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = names
                    .chunks(chunk)
                    .enumerate()
                    .map(|(i, part)| {
                        let snapshot = &snapshot;
                        let ruleset = &ruleset;
                        scope.spawn(move || {
                            let _shard = p3p_telemetry::span!(
                                "corpus_shard",
                                shard = i,
                                policies = part.len()
                            );
                            snapshot.match_corpus_subset(ruleset, engine, Some(part))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("corpus shard thread panicked"))
                    .collect()
            });
        let mut out = Vec::with_capacity(names.len());
        for shard in results {
            out.extend(shard?);
        }
        Ok((epoch, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3p_appel::model::{jane_preference, Behavior};
    use p3p_policy::model::volga_policy;
    use p3p_workload::Sensitivity;

    #[test]
    fn shared_server_round_trip() {
        let shared = SharedServer::new(PolicyServer::new());
        shared.install_policy(&volga_policy()).unwrap();
        let v = shared
            .match_preference(&jane_preference(), Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        assert_eq!(v.verdict.behavior, Behavior::Request);
        let names = shared.with(|s| s.policy_names());
        assert_eq!(names, ["volga"]);
    }

    #[test]
    fn parallel_matching_agrees_with_serial() {
        let shared = SharedServer::new(PolicyServer::new());
        for p in p3p_workload::corpus(42).into_iter().take(8) {
            shared.install_policy(&p).unwrap();
        }
        let pool = MatchPool::new(&shared);
        let names = shared.with(|s| s.policy_names());
        let ruleset = Sensitivity::High.ruleset();

        // Serial reference verdicts.
        let serial: Vec<_> = names
            .iter()
            .map(|n| {
                shared
                    .match_preference(&ruleset, Target::Policy(n), EngineKind::Sql)
                    .unwrap()
                    .verdict
            })
            .collect();

        // Parallel: one thread per policy.
        let parallel: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = names
                .iter()
                .map(|n| {
                    let pool = &pool;
                    let ruleset = &ruleset;
                    scope.spawn(move || {
                        pool.match_preference(ruleset, Target::Policy(n), EngineKind::Sql)
                            .unwrap()
                            .verdict
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_corpus_matching_agrees_with_single_threaded() {
        let shared = SharedServer::new(PolicyServer::new());
        for p in p3p_workload::corpus(42) {
            shared.install_policy(&p).unwrap();
        }
        let pool = MatchPool::new(&shared);
        let ruleset = Sensitivity::High.ruleset();
        let single = pool.match_corpus(&ruleset, EngineKind::Sql, 1).unwrap();
        assert!(!single.is_empty());
        // Shard counts beyond the corpus size clamp instead of spawning
        // empty shards.
        for shards in [2, 4, 7, 1000] {
            let sharded = pool
                .match_corpus(&ruleset, EngineKind::Sql, shards)
                .unwrap();
            assert_eq!(single, sharded, "{shards} shards");
        }
    }

    #[test]
    fn refresh_picks_up_new_installs() {
        let shared = SharedServer::new(PolicyServer::new());
        shared.install_policy(&volga_policy()).unwrap();
        let pool = MatchPool::new(&shared);
        let jane = jane_preference();
        assert!(pool
            .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .is_ok());

        let mut second = volga_policy();
        second.name = "second".to_string();
        shared.install_policy(&second).unwrap();
        // Stale snapshot does not know the new policy...
        assert!(pool
            .match_preference(&jane, Target::Policy("second"), EngineKind::Sql)
            .is_err());
        // ...until refreshed.
        pool.refresh(&shared);
        assert!(pool
            .match_preference(&jane, Target::Policy("second"), EngineKind::Sql)
            .is_ok());
    }

    #[test]
    fn snapshot_pins_one_epoch_across_concurrent_installs() {
        let shared = SharedServer::new(PolicyServer::new());
        shared.install_policy(&volga_policy()).unwrap();
        let pool = MatchPool::new(&shared);
        let pinned = pool.snapshot_epoch();
        assert_eq!(pinned, 1);
        let jane = jane_preference();

        // The primary churns underneath the pool...
        let mut second = volga_policy();
        second.name = "second".to_string();
        shared.install_policy(&second).unwrap();
        shared.with(|s| s.remove_policy("second")).unwrap();
        assert_eq!(shared.catalog_epoch(), 3);

        // ...but every match the pool answers still reports the pinned
        // epoch, and the sweep is explained by that single epoch too.
        let out = pool
            .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        assert_eq!(out.epoch, pinned);
        let (epoch, verdicts) = pool.match_corpus_pinned(&jane, EngineKind::Sql, 4).unwrap();
        assert_eq!(epoch, pinned);
        assert_eq!(verdicts.len(), 1);

        // Refresh advances the pin to the primary's epoch.
        pool.refresh(&shared);
        assert_eq!(pool.snapshot_epoch(), 3);
    }

    #[test]
    fn pool_snapshots_share_warm_verdicts_with_the_primary() {
        let shared = SharedServer::new(PolicyServer::new());
        shared.install_policy(&volga_policy()).unwrap();
        shared.with(|s| s.set_verdict_cache_capacity(64));
        let pool = MatchPool::new(&shared);
        let jane = jane_preference();
        // The pool's first match memoizes; the primary's next identical
        // match hits the shared cache (no catalog mutation intervened,
        // so the caches are still attached).
        pool.match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        let warm = shared
            .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        assert!(warm.verdict_cached);
    }
}
