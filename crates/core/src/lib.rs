//! # p3p-server — the server-centric P3P architecture
//!
//! This crate is the reproduction's core: the contribution of
//! *"Implementing P3P Using Database Technology"* (ICDE 2003). A web
//! site installs its P3P privacy policies in a relational database
//! once; at request time, each user's APPEL preference is translated
//! into SQL (or XQuery) and evaluated by the database engine, instead
//! of a specialized APPEL engine running in every client.
//!
//! Module map (paper section in parentheses):
//!
//! * [`meta_schema`] — the P3P element hierarchy that drives the
//!   generic decomposition (§5.1).
//! * [`generic`] — the schema-decomposition algorithm of Figure 8 and
//!   the data-population algorithm of Figure 10.
//! * [`optimized`] — the hand-optimized schema of Figure 14 and its
//!   shredder, with shred-time category augmentation (§5.4, §6.3.2).
//! * [`refschema`] — reference-file tables (Figure 16) and
//!   `applicablePolicy()` resolution (§5.3, §5.5).
//! * [`appel2sql`] — APPEL → SQL translation: the generic algorithm of
//!   Figure 11 and the optimized variant producing Figure 15 shapes.
//! * [`appel2xquery`] — APPEL → XQuery translation (Figure 17/18).
//! * [`xtable`] — the XTABLE stand-in: XQuery → SQL over the generic
//!   schema, with the complexity limit that reproduces the missing
//!   Medium entry of Figure 21.
//! * [`view`] — the XML reconstruction view over the shredded tables
//!   (§5.6).
//! * [`server`] — [`server::PolicyServer`]: install policies and
//!   reference files, match preferences with any engine.
//! * [`audit`] — the site-owner conflict auditing §4.2 motivates.
//! * [`enforce`] — the Privacy Constraint Validator of the paper's
//!   future-work direction (§7): internal data accesses checked against
//!   the shredded policy tables, with consent tracking and an audit
//!   log.
//! * [`versioning`] — policy version history over the database (§4.2:
//!   "Versions of policies can be better managed using a database
//!   system").
//! * [`verdict_cache`] — memoized verdicts under live policy churn:
//!   a sharded LRU keyed by (preference fingerprint × policy id ×
//!   policy version × engine × knobs), invalidated precisely when a
//!   policy is re-shredded or removed.
//!
//! ## Quick example
//!
//! ```
//! use p3p_server::server::{EngineKind, PolicyServer, Target};
//! use p3p_policy::model::volga_policy;
//! use p3p_appel::model::{jane_preference, Behavior};
//!
//! let mut server = PolicyServer::new();
//! server.install_policy(&volga_policy()).unwrap();
//!
//! let outcome = server
//!     .match_preference(&jane_preference(), Target::Policy("volga"), EngineKind::Sql)
//!     .unwrap();
//! assert_eq!(outcome.verdict.behavior, Behavior::Request);
//! ```

pub mod appel2sql;
pub mod appel2xquery;
pub mod audit;
pub mod concurrent;
pub mod enforce;
pub mod error;
pub mod generic;
pub mod hybrid;
pub mod meta_schema;
pub mod optimized;
pub mod refschema;
pub mod server;
pub mod subset;
pub mod translation;
pub mod verdict_cache;
pub mod versioning;
pub mod view;
pub mod xtable;

pub use error::ServerError;
pub use server::{EngineKind, MatchOutcome, PolicyServer, Target};
