//! The P3P element meta-schema driving the generic (Figure 8) relational
//! decomposition.
//!
//! The paper's schema-decomposition algorithm creates one table per
//! element *type*, whose key is its own id plus the primary key of the
//! parent element's table. This module describes the matchable P3P
//! element hierarchy — names, parents, attributes, text content — so
//! both the DDL generator and the DOM-driven shredder (Figure 10) can
//! be written once, generically.

use p3p_policy::vocab::{Access, Category, Purpose, Recipient, Retention};

/// One element type in the P3P hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementDef {
    /// XML local name, e.g. `DATA-GROUP` or `individual-decision`.
    pub name: &'static str,
    /// Parent element's local name (`None` for POLICY).
    pub parent: Option<&'static str>,
    /// Attributes stored as columns.
    pub attrs: &'static [&'static str],
    /// Whether the element's text content is stored (CONSEQUENCE).
    pub has_text: bool,
}

/// The structural (non-value) elements.
const STRUCTURAL: &[ElementDef] = &[
    ElementDef {
        name: "POLICY",
        parent: None,
        attrs: &["name", "discuri", "opturi"],
        has_text: false,
    },
    ElementDef {
        name: "STATEMENT",
        parent: Some("POLICY"),
        attrs: &[],
        has_text: false,
    },
    ElementDef {
        name: "CONSEQUENCE",
        parent: Some("STATEMENT"),
        attrs: &[],
        has_text: true,
    },
    ElementDef {
        name: "NON-IDENTIFIABLE",
        parent: Some("STATEMENT"),
        attrs: &[],
        has_text: false,
    },
    ElementDef {
        name: "PURPOSE",
        parent: Some("STATEMENT"),
        attrs: &[],
        has_text: false,
    },
    ElementDef {
        name: "RECIPIENT",
        parent: Some("STATEMENT"),
        attrs: &[],
        has_text: false,
    },
    ElementDef {
        name: "RETENTION",
        parent: Some("STATEMENT"),
        attrs: &[],
        has_text: false,
    },
    ElementDef {
        name: "DATA-GROUP",
        parent: Some("STATEMENT"),
        attrs: &["base"],
        has_text: false,
    },
    ElementDef {
        name: "DATA",
        parent: Some("DATA-GROUP"),
        attrs: &["ref", "optional"],
        has_text: false,
    },
    ElementDef {
        name: "CATEGORIES",
        parent: Some("DATA"),
        attrs: &[],
        has_text: false,
    },
    ElementDef {
        name: "ACCESS",
        parent: Some("POLICY"),
        attrs: &[],
        has_text: false,
    },
];

/// Attributes of vocabulary value elements under PURPOSE/RECIPIENT.
const REQUIRED_ONLY: &[&str] = &["required"];

/// The full meta-schema: structural elements plus every vocabulary
/// value element at its place in the hierarchy.
pub fn all_elements() -> Vec<ElementDef> {
    let mut defs: Vec<ElementDef> = STRUCTURAL.to_vec();
    for p in Purpose::ALL {
        defs.push(ElementDef {
            name: p.as_str(),
            parent: Some("PURPOSE"),
            attrs: REQUIRED_ONLY,
            has_text: false,
        });
    }
    for r in Recipient::ALL {
        defs.push(ElementDef {
            name: r.as_str(),
            parent: Some("RECIPIENT"),
            attrs: REQUIRED_ONLY,
            has_text: false,
        });
    }
    for r in Retention::ALL {
        defs.push(ElementDef {
            name: r.as_str(),
            parent: Some("RETENTION"),
            attrs: &[],
            has_text: false,
        });
    }
    for c in Category::ALL {
        defs.push(ElementDef {
            name: c.as_str(),
            parent: Some("CATEGORIES"),
            attrs: &[],
            has_text: false,
        });
    }
    for a in Access::ALL {
        defs.push(ElementDef {
            name: a.as_str(),
            parent: Some("ACCESS"),
            attrs: &[],
            has_text: false,
        });
    }
    defs
}

/// Look up an element definition by XML local name.
pub fn find(name: &str) -> Option<ElementDef> {
    all_elements().into_iter().find(|d| d.name == name)
}

/// Relational identifier for an element or attribute name: lowercase,
/// `-` → `_`.
pub fn sql_name(name: &str) -> String {
    name.to_ascii_lowercase().replace('-', "_")
}

/// The id column of an element's table, e.g. `data_id` for DATA.
pub fn id_column(name: &str) -> String {
    format!("{}_id", sql_name(name))
}

/// The chain of id columns forming an element's primary key: the
/// ancestors' id columns (outermost first) followed by its own.
pub fn key_chain(name: &str) -> Vec<String> {
    let mut chain = Vec::new();
    let mut current = Some(name.to_string());
    while let Some(n) = current {
        chain.push(id_column(&n));
        current = find(&n).and_then(|d| d.parent.map(str::to_string));
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count_covers_vocabularies() {
        // 11 structural + 12 purposes + 6 recipients + 5 retentions +
        // 17 categories + 6 access values.
        assert_eq!(all_elements().len(), 11 + 12 + 6 + 5 + 17 + 6);
    }

    #[test]
    fn names_are_unique() {
        let defs = all_elements();
        let mut names: Vec<&str> = defs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn sql_name_mangling() {
        assert_eq!(sql_name("DATA-GROUP"), "data_group");
        assert_eq!(sql_name("individual-decision"), "individual_decision");
        assert_eq!(id_column("DATA-GROUP"), "data_group_id");
    }

    #[test]
    fn key_chain_matches_figure_9() {
        // "the primary key for the DATA table will consist of the
        //  concatenation of data id with the foreign key" — paper §5.1;
        // the foreign key is the DATA-GROUP table's primary key.
        assert_eq!(
            key_chain("DATA"),
            vec!["policy_id", "statement_id", "data_group_id", "data_id"]
        );
        assert_eq!(key_chain("POLICY"), vec!["policy_id"]);
        assert_eq!(
            key_chain("current"),
            vec!["policy_id", "statement_id", "purpose_id", "current_id"]
        );
    }

    #[test]
    fn every_parent_exists() {
        for def in all_elements() {
            if let Some(p) = def.parent {
                assert!(find(p).is_some(), "missing parent {p} of {}", def.name);
            }
        }
    }

    #[test]
    fn value_elements_under_purpose_take_required() {
        let d = find("individual-decision").unwrap();
        assert_eq!(d.parent, Some("PURPOSE"));
        assert_eq!(d.attrs, &["required"]);
        let r = find("stated-purpose").unwrap();
        assert!(r.attrs.is_empty());
    }

    #[test]
    fn find_rejects_unknown() {
        assert!(find("RULESET").is_none());
        assert!(find("frobnicate").is_none());
    }
}
