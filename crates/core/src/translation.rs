//! Per-ruleset translation cache.
//!
//! Translating an APPEL ruleset to SQL (or XQuery compiled down to SQL)
//! is pure: the output depends only on the ruleset and the target
//! dialect, never on which policy is being matched. The server
//! therefore fingerprints each ruleset and caches the translated,
//! *prepared* plans, so a preference that is matched against the whole
//! policy corpus pays the translate + parse + validate cost exactly
//! once. Policy identity enters the queries as a bound parameter (see
//! [`crate::appel2sql::translate_rule_optimized_bound`]), which is what
//! makes the plans reusable across policies in the first place.
//!
//! The cache is keyed by `(fingerprint, variant)` where the fingerprint
//! is a 64-bit hash of the ruleset structure and the variant selects
//! the translation dialect. Values are shared slices of prepared plans
//! (`None` marks an unconditional rule in the XTable dialect, which
//! produces no query at all). Capacity is bounded with LRU eviction.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use p3p_appel::Ruleset;
use p3p_minidb::Prepared;
use p3p_telemetry::metrics::{self, Counter};

/// Which translation dialect a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranslationVariant {
    /// Optimized relational schema (paper Fig. 14).
    Optimized,
    /// Generic edge/attribute schema (paper Fig. 8).
    Generic,
    /// XQuery translated and compiled against the XTable encoding.
    XTable,
    /// Set-at-a-time corpus queries against the optimized schema:
    /// each rule returns every matching `policy_id` in one execution.
    OptimizedCorpus,
    /// Set-at-a-time corpus queries against the generic schema.
    GenericCorpus,
}

/// A cached translation: one slot per rule, in ruleset order. `None`
/// marks a rule that needs no query (unconditional XTable rule).
pub type TranslatedPlans = Arc<[Option<Prepared>]>;

/// Counters for cache effectiveness, surfaced by benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

const DEFAULT_TRANSLATION_CACHE_CAPACITY: usize = 128;

struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: metrics::counter("p3p_translation_cache_hits_total"),
        misses: metrics::counter("p3p_translation_cache_misses_total"),
        evictions: metrics::counter("p3p_translation_cache_evictions_total"),
    })
}

#[derive(Debug)]
struct Entry {
    plans: TranslatedPlans,
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<(u64, TranslationVariant), Entry>,
    tick: u64,
    capacity: usize,
    stats: TranslationCacheStats,
}

/// Bounded LRU cache from ruleset fingerprints to prepared plans.
///
/// Cloning shares the underlying cache: every snapshot of a
/// [`crate::PolicyServer`] keeps warming the same cache, so concurrent
/// matchers benefit from each other's translations.
#[derive(Debug, Clone)]
pub struct TranslationCache {
    inner: Arc<Mutex<Inner>>,
}

impl Default for TranslationCache {
    fn default() -> Self {
        TranslationCache {
            inner: Arc::new(Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                capacity: DEFAULT_TRANSLATION_CACHE_CAPACITY,
                stats: TranslationCacheStats::default(),
            })),
        }
    }
}

impl TranslationCache {
    /// Structural fingerprint of a ruleset. Two rulesets with the same
    /// rules in the same order collide on purpose; unrelated rulesets
    /// colliding requires a 64-bit hash collision.
    pub fn fingerprint(ruleset: &Ruleset) -> u64 {
        let mut hasher = DefaultHasher::new();
        ruleset.hash(&mut hasher);
        hasher.finish()
    }

    /// Look up the translation for `ruleset` in `variant`, building it
    /// with `build` on a miss. Returns the plans plus whether they came
    /// from the cache. Failed translations are not cached.
    pub fn get_or_try_insert<E>(
        &self,
        ruleset: &Ruleset,
        variant: TranslationVariant,
        build: impl FnOnce() -> Result<Vec<Option<Prepared>>, E>,
    ) -> Result<(TranslatedPlans, bool), E> {
        let key = (Self::fingerprint(ruleset), variant);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let plans = Arc::clone(&entry.plans);
                inner.stats.hits += 1;
                cache_metrics().hits.inc();
                return Ok((plans, true));
            }
            inner.stats.misses += 1;
            cache_metrics().misses.inc();
        }
        // Translate outside the lock: it is the expensive part, and a
        // rare duplicate build under contention is harmless.
        let plans: TranslatedPlans = build()?.into();
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.capacity == 0 {
            return Ok((plans, false));
        }
        if inner.entries.len() >= inner.capacity && !inner.entries.contains_key(&key) {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.entries.remove(&oldest);
                inner.stats.evictions += 1;
                cache_metrics().evictions.inc();
            }
        }
        inner.entries.insert(
            key,
            Entry {
                plans: Arc::clone(&plans),
                last_used: tick,
            },
        );
        Ok((plans, false))
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> TranslationCacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adjust capacity (0 disables caching). Does not shrink eagerly;
    /// oversized contents drain through normal LRU eviction.
    pub fn set_capacity(&self, capacity: usize) {
        self.inner.lock().unwrap().capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3p_appel::{Behavior, Expr, Rule};

    fn ruleset(behavior: Behavior) -> Ruleset {
        Ruleset::new(vec![Rule::with_pattern(
            behavior,
            Expr::named("p3p:POLICY"),
        )])
    }

    fn plans() -> Vec<Option<Prepared>> {
        vec![None]
    }

    #[test]
    fn identical_rulesets_share_fingerprints() {
        let a = ruleset(Behavior::Request);
        let b = ruleset(Behavior::Request);
        assert_eq!(
            TranslationCache::fingerprint(&a),
            TranslationCache::fingerprint(&b)
        );
        assert_ne!(
            TranslationCache::fingerprint(&a),
            TranslationCache::fingerprint(&ruleset(Behavior::Block))
        );
    }

    #[test]
    fn second_lookup_hits() {
        let cache = TranslationCache::default();
        let rs = ruleset(Behavior::Request);
        let (_, cached) = cache
            .get_or_try_insert::<()>(&rs, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        assert!(!cached);
        let (_, cached) = cache
            .get_or_try_insert::<()>(&rs, TranslationVariant::Optimized, || {
                panic!("must not rebuild on a hit")
            })
            .unwrap();
        assert!(cached);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn variants_are_cached_independently() {
        let cache = TranslationCache::default();
        let rs = ruleset(Behavior::Request);
        for variant in [
            TranslationVariant::Optimized,
            TranslationVariant::Generic,
            TranslationVariant::XTable,
            TranslationVariant::OptimizedCorpus,
            TranslationVariant::GenericCorpus,
        ] {
            let (_, cached) = cache
                .get_or_try_insert::<()>(&rs, variant, || Ok(plans()))
                .unwrap();
            assert!(!cached, "{variant:?} should miss on first use");
        }
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn failed_translations_are_not_cached() {
        let cache = TranslationCache::default();
        let rs = ruleset(Behavior::Request);
        let err: Result<_, &str> =
            cache.get_or_try_insert(&rs, TranslationVariant::Optimized, || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        let (_, cached) = cache
            .get_or_try_insert::<()>(&rs, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        assert!(!cached);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = TranslationCache::default();
        cache.set_capacity(2);
        let a = ruleset(Behavior::Request);
        let b = ruleset(Behavior::Block);
        let c = ruleset(Behavior::Limited);
        for rs in [&a, &b] {
            cache
                .get_or_try_insert::<()>(rs, TranslationVariant::Optimized, || Ok(plans()))
                .unwrap();
        }
        // Touch `a` so `b` is the eviction candidate.
        cache
            .get_or_try_insert::<()>(&a, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        cache
            .get_or_try_insert::<()>(&c, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, a_cached) = cache
            .get_or_try_insert::<()>(&a, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        assert!(a_cached, "recently used entry must survive eviction");
        let (_, b_cached) = cache
            .get_or_try_insert::<()>(&b, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        assert!(!b_cached, "least recently used entry must be evicted");
    }

    #[test]
    fn clones_share_state() {
        let cache = TranslationCache::default();
        let clone = cache.clone();
        let rs = ruleset(Behavior::Request);
        cache
            .get_or_try_insert::<()>(&rs, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        let (_, cached) = clone
            .get_or_try_insert::<()>(&rs, TranslationVariant::Optimized, || Ok(plans()))
            .unwrap();
        assert!(cached, "clones must see each other's translations");
    }
}
