//! Policy version management over the database.
//!
//! §4.2: *"Policies of a website will not stay static forever. Versions
//! of policies can be better managed using a database system than the
//! current file system based implementations."* This module keeps a
//! version history table next to the shredded tables: every upgrade of
//! a named policy archives the previous serialized form, records what
//! changed at the vocabulary level, and can roll the live policy back
//! to any archived version.

use crate::error::ServerError;
use crate::generic::sql_quote;
use crate::server::PolicyServer;
use p3p_policy::model::Policy;
use std::collections::BTreeSet;

/// Install the version-history table. Idempotent.
pub fn install(server: &mut PolicyServer) -> Result<(), ServerError> {
    let db = server.database_mut();
    if db.table("policy_version").is_none() {
        db.execute(
            "CREATE TABLE policy_version (name VARCHAR NOT NULL, version INT NOT NULL, \
             xml VARCHAR NOT NULL, note VARCHAR, PRIMARY KEY (name, version))",
        )?;
    }
    Ok(())
}

/// Upgrade a policy: archive the live version, then replace it with
/// `new_policy` (which must carry the same name). Returns the new
/// version number (the first upgrade of a policy produces version 2;
/// the initial install is retroactively archived as version 1).
///
/// The replacement goes through [`PolicyServer::remove_policy`] and
/// [`PolicyServer::install_policy`], so it bumps the name's catalog
/// version counter twice, advances the catalog epoch, and evicts the
/// policy's memoized verdicts — a verdict cached against the old form
/// can never be served after the upgrade (the translation cache needs
/// no eviction: its plans are keyed by preference only and take the
/// policy id as a bind parameter, so they are policy-independent).
pub fn upgrade_policy(
    server: &mut PolicyServer,
    new_policy: &Policy,
    note: &str,
) -> Result<i64, ServerError> {
    install(server)?;
    let name = new_policy.name.clone();
    let Some(current_id) = server.policy_id(&name) else {
        return Err(ServerError::UnknownPolicy(name));
    };
    // Archive the live form (reconstruct its augmented model from the
    // tables; the archive stores XML).
    let live = crate::view::reconstruct_policy(server.database(), current_id)?;
    let latest = latest_version(server, &name)?;
    let next = match latest {
        Some(v) => v + 1,
        None => {
            // First upgrade: archive the original as version 1.
            archive(server, &name, 1, &live.to_xml(), "initial version")?;
            2
        }
    };
    archive(server, &name, next, &new_policy.to_xml(), note)?;
    server.remove_policy(&name)?;
    server.install_policy(new_policy)?;
    Ok(next)
}

/// Roll the live policy back to an archived version. The rollback
/// itself is recorded as a new version (history is append-only).
pub fn rollback(server: &mut PolicyServer, name: &str, version: i64) -> Result<i64, ServerError> {
    let Some(xml) = version_xml(server, name, version)? else {
        return Err(ServerError::Install(format!(
            "policy `{name}` has no archived version {version}"
        )));
    };
    let policy = Policy::parse(&xml)?;
    upgrade_policy(server, &policy, &format!("rollback to version {version}"))
}

fn archive(
    server: &mut PolicyServer,
    name: &str,
    version: i64,
    xml: &str,
    note: &str,
) -> Result<(), ServerError> {
    server.database_mut().execute(&format!(
        "INSERT INTO policy_version VALUES ({}, {version}, {}, {})",
        sql_quote(name),
        sql_quote(xml),
        sql_quote(note)
    ))?;
    Ok(())
}

/// The highest archived version of a policy, if any.
pub fn latest_version(server: &PolicyServer, name: &str) -> Result<Option<i64>, ServerError> {
    if server.database().table("policy_version").is_none() {
        return Ok(None);
    }
    let r = server.database().query(&format!(
        "SELECT version FROM policy_version WHERE name = {} ORDER BY version DESC LIMIT 1",
        sql_quote(name)
    ))?;
    Ok(r.rows.first().and_then(|row| row[0].as_int()))
}

/// The archived XML of one version.
pub fn version_xml(
    server: &PolicyServer,
    name: &str,
    version: i64,
) -> Result<Option<String>, ServerError> {
    let r = server.database().query(&format!(
        "SELECT xml FROM policy_version WHERE name = {} AND version = {version}",
        sql_quote(name)
    ))?;
    Ok(r.rows
        .first()
        .and_then(|row| row[0].as_str())
        .map(str::to_string))
}

/// The full history of a policy: `(version, note)` rows in order.
pub fn history(server: &PolicyServer, name: &str) -> Result<Vec<(i64, String)>, ServerError> {
    if server.database().table("policy_version").is_none() {
        return Ok(Vec::new());
    }
    let r = server.database().query(&format!(
        "SELECT version, note FROM policy_version WHERE name = {} ORDER BY version",
        sql_quote(name)
    ))?;
    Ok(r.rows
        .iter()
        .map(|row| {
            (
                row[0].as_int().unwrap_or_default(),
                row[1].as_str().unwrap_or_default().to_string(),
            )
        })
        .collect())
}

/// A vocabulary-level diff between two policy versions: which purposes,
/// recipients, and data references were added or removed anywhere in
/// the policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyDiff {
    pub purposes_added: Vec<String>,
    pub purposes_removed: Vec<String>,
    pub recipients_added: Vec<String>,
    pub recipients_removed: Vec<String>,
    pub data_added: Vec<String>,
    pub data_removed: Vec<String>,
}

impl PolicyDiff {
    /// True when nothing changed at the vocabulary level.
    pub fn is_empty(&self) -> bool {
        self.purposes_added.is_empty()
            && self.purposes_removed.is_empty()
            && self.recipients_added.is_empty()
            && self.recipients_removed.is_empty()
            && self.data_added.is_empty()
            && self.data_removed.is_empty()
    }
}

/// Diff two policies at the vocabulary level.
pub fn diff(old: &Policy, new: &Policy) -> PolicyDiff {
    fn purposes(p: &Policy) -> BTreeSet<String> {
        p.all_purposes()
            .map(|pu| format!("{} ({})", pu.purpose, pu.required))
            .collect()
    }
    fn recipients(p: &Policy) -> BTreeSet<String> {
        p.statements
            .iter()
            .flat_map(|s| s.recipients.iter())
            .map(|r| format!("{} ({})", r.recipient, r.required))
            .collect()
    }
    fn data(p: &Policy) -> BTreeSet<String> {
        p.all_data_refs().map(|d| d.reference.clone()).collect()
    }
    let (po, pn) = (purposes(old), purposes(new));
    let (ro, rn) = (recipients(old), recipients(new));
    let (dold, dnew) = (data(old), data(new));
    PolicyDiff {
        purposes_added: pn.difference(&po).cloned().collect(),
        purposes_removed: po.difference(&pn).cloned().collect(),
        recipients_added: rn.difference(&ro).cloned().collect(),
        recipients_removed: ro.difference(&rn).cloned().collect(),
        data_added: dnew.difference(&dold).cloned().collect(),
        data_removed: dold.difference(&dnew).cloned().collect(),
    }
}

/// Diff two *archived* versions of a policy.
pub fn diff_versions(
    server: &PolicyServer,
    name: &str,
    from: i64,
    to: i64,
) -> Result<PolicyDiff, ServerError> {
    let old = version_xml(server, name, from)?
        .ok_or_else(|| ServerError::Install(format!("no version {from} of `{name}`")))?;
    let new = version_xml(server, name, to)?
        .ok_or_else(|| ServerError::Install(format!("no version {to} of `{name}`")))?;
    Ok(diff(&Policy::parse(&old)?, &Policy::parse(&new)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3p_policy::model::{volga_policy, PurposeUse};
    use p3p_policy::vocab::Purpose;
    use p3p_policy::Required;

    fn setup() -> PolicyServer {
        let mut s = PolicyServer::new();
        s.install_policy(&volga_policy()).unwrap();
        install(&mut s).unwrap();
        s
    }

    fn v2() -> Policy {
        let mut p = volga_policy();
        p.statements[1]
            .purposes
            .push(PurposeUse::opt_in(Purpose::Telemarketing));
        p
    }

    #[test]
    fn first_upgrade_archives_both_versions() {
        let mut s = setup();
        let v = upgrade_policy(&mut s, &v2(), "add telemarketing opt-in").unwrap();
        assert_eq!(v, 2);
        let h = history(&s, "volga").unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], (1, "initial version".to_string()));
        assert_eq!(h[1].0, 2);
    }

    #[test]
    fn upgrade_replaces_live_policy() {
        let mut s = setup();
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        // Live tables now contain the telemarketing purpose.
        let r = s
            .database()
            .query("SELECT COUNT(*) FROM purpose WHERE purpose = 'telemarketing'")
            .unwrap();
        assert_eq!(r.scalar().unwrap().as_int(), Some(1));
    }

    #[test]
    fn rollback_restores_and_appends_history() {
        let mut s = setup();
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        let v = rollback(&mut s, "volga", 1).unwrap();
        assert_eq!(v, 3);
        let r = s
            .database()
            .query("SELECT COUNT(*) FROM purpose WHERE purpose = 'telemarketing'")
            .unwrap();
        assert_eq!(r.scalar().unwrap().as_int(), Some(0));
        assert_eq!(history(&s, "volga").unwrap().len(), 3);
    }

    #[test]
    fn rollback_to_missing_version_errors() {
        let mut s = setup();
        assert!(rollback(&mut s, "volga", 7).is_err());
    }

    #[test]
    fn upgrade_of_unknown_policy_errors() {
        let mut s = PolicyServer::new();
        assert!(matches!(
            upgrade_policy(&mut s, &volga_policy(), "x"),
            Err(ServerError::UnknownPolicy(_))
        ));
    }

    #[test]
    fn diff_reports_vocabulary_changes() {
        let d = diff(&volga_policy(), &v2());
        assert_eq!(d.purposes_added, vec!["telemarketing (opt-in)"]);
        assert!(d.purposes_removed.is_empty());
        assert!(d.recipients_added.is_empty());
        assert!(d.data_added.is_empty());
        assert!(!d.is_empty());
        assert!(diff(&volga_policy(), &volga_policy()).is_empty());
    }

    #[test]
    fn diff_tracks_required_changes() {
        let mut changed = volga_policy();
        changed.statements[1].purposes[0].required = Required::Always;
        let d = diff(&volga_policy(), &changed);
        assert_eq!(d.purposes_added, vec!["individual-decision (always)"]);
        assert_eq!(d.purposes_removed, vec!["individual-decision (opt-in)"]);
    }

    #[test]
    fn diff_versions_reads_the_archive() {
        let mut s = setup();
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        let d = diff_versions(&s, "volga", 1, 2).unwrap();
        assert_eq!(d.purposes_added, vec!["telemarketing (opt-in)"]);
        assert!(diff_versions(&s, "volga", 1, 9).is_err());
    }

    #[test]
    fn archived_version_one_reflects_augmented_live_form() {
        let mut s = setup();
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        let xml = version_xml(&s, "volga", 1).unwrap().unwrap();
        let archived = Policy::parse(&xml).unwrap();
        // The archive of the live form carries the augmented data rows.
        assert!(archived
            .all_data_refs()
            .any(|d| d.reference == "user.name.given"));
    }

    #[test]
    fn upgrades_and_rollbacks_change_match_verdicts() {
        use p3p_appel::model::{jane_preference, Behavior};
        let mut s = setup();
        // Jane's first rule blocks *any* telemarketing (Figure 2 lists
        // it without a required constraint), so v2 trips her preference.
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        let blocked = s
            .match_preference(
                &jane_preference(),
                crate::server::Target::Policy("volga"),
                crate::server::EngineKind::Sql,
            )
            .unwrap();
        assert_eq!(blocked.verdict.behavior, Behavior::Block);
        // Rolling back to version 1 restores the acceptable policy.
        rollback(&mut s, "volga", 1).unwrap();
        let ok = s
            .match_preference(
                &jane_preference(),
                crate::server::Target::Policy("volga"),
                crate::server::EngineKind::Sql,
            )
            .unwrap();
        assert_eq!(ok.verdict.behavior, Behavior::Request);
    }

    #[test]
    fn upgrade_never_serves_a_stale_cached_verdict() {
        use crate::server::{EngineKind, Target};
        use p3p_appel::model::{jane_preference, Behavior};
        let mut s = setup();
        s.set_verdict_cache_capacity(256);
        let jane = jane_preference();
        // Warm both caches against v1: the second match is answered
        // straight from the verdict cache.
        s.match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        let warm = s
            .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        assert!(warm.verdict_cached);
        assert_eq!(warm.verdict.behavior, Behavior::Request);

        // Upgrade to v2 (telemarketing): the cached Request verdict is
        // stale and must not be served.
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        let after = s
            .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        assert!(!after.verdict_cached, "stale verdict served after upgrade");
        assert_eq!(after.verdict.behavior, Behavior::Block);

        // Rollback likewise: the v2 Block verdict just memoized must
        // not survive the rollback to v1.
        s.match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        rollback(&mut s, "volga", 1).unwrap();
        let rolled = s
            .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
            .unwrap();
        assert!(
            !rolled.verdict_cached,
            "stale verdict served after rollback"
        );
        assert_eq!(rolled.verdict.behavior, Behavior::Request);
    }

    #[test]
    fn upgrade_bumps_catalog_version_and_epoch() {
        let mut s = setup();
        assert_eq!(s.policy_version("volga"), 1);
        let epoch = s.catalog_epoch();
        upgrade_policy(&mut s, &v2(), "v2").unwrap();
        // Remove + install: two version bumps, two epoch bumps.
        assert_eq!(s.policy_version("volga"), 3);
        assert_eq!(s.catalog_epoch(), epoch + 2);
        rollback(&mut s, "volga", 1).unwrap();
        assert_eq!(s.policy_version("volga"), 5);
        assert_eq!(s.catalog_epoch(), epoch + 4);
    }
}
