//! The XTABLE role: compiling XQuery into SQL over the generic schema.
//!
//! The paper's second architectural variation runs APPEL-derived
//! XQueries against an XML *view* of the shredded relational tables;
//! the XTABLE/XPERANTO middleware translates each XQuery into SQL for
//! DB2 (§6.1). This module is that middleware's stand-in. Two
//! deliberate fidelity points:
//!
//! * the compiler works against the **generic** (Figure 8) schema —
//!   the reconstruction view is defined over the uniform decomposition,
//!   not the hand-optimized tables — so its SQL carries more joins
//!   than the direct APPEL→SQL translation, reproducing the measured
//!   gap between the SQL and XQuery paths (Figure 20);
//! * queries containing the exactness predicate (`only(...)`) or
//!   exceeding a size limit are rejected with
//!   [`XQueryError::TooComplex`], reproducing the missing Medium entry
//!   of Figure 21 ("The XTABLE translation of the XQuery into SQL was
//!   too complex for DB2 to execute in this case").

use crate::generic::{sql_quote, GenericSchema};
use crate::meta_schema;
use p3p_xquery::ast::{Pred, Step, XQuery};
use p3p_xquery::error::XQueryError;

/// The XQuery→SQL compiler.
#[derive(Debug, Clone)]
pub struct XTable {
    schema: GenericSchema,
    /// Maximum query size ([`XQuery::size`]) accepted.
    pub size_limit: usize,
}

impl XTable {
    /// A compiler over the given generic schema with the default limit.
    pub fn new(schema: GenericSchema) -> XTable {
        XTable {
            schema,
            size_limit: 96,
        }
    }

    /// Compile a query to SQL selecting the behavior from
    /// `applicable_policy` when the path matches.
    pub fn compile(&self, query: &XQuery) -> Result<String, XQueryError> {
        if query.size() > self.size_limit {
            return Err(XQueryError::TooComplex {
                size: query.size(),
                limit: self.size_limit,
            });
        }
        if contains_only(&query.root) {
            // Exactness requires negated quantification over *all*
            // sibling element tables of the view — beyond this
            // compiler, as it was beyond XTABLE+DB2 in the paper.
            return Err(XQueryError::TooComplex {
                size: query.size(),
                limit: self.size_limit,
            });
        }
        let mut aliases = 0usize;
        let cond = self.step_condition(&query.root, None, &mut aliases)?;
        Ok(format!(
            "SELECT {} FROM applicable_policy WHERE {cond}",
            sql_quote(&query.behavior)
        ))
    }

    fn step_condition(
        &self,
        step: &Step,
        parent: Option<(&str, &str)>,
        aliases: &mut usize,
    ) -> Result<String, XQueryError> {
        let Some(def) = meta_schema::find(&step.name) else {
            return Ok("1 = 0".to_string());
        };
        match (parent, def.parent) {
            (None, None) => {}
            (Some((_, pname)), Some(dparent)) if pname == dparent => {}
            _ => return Ok("1 = 0".to_string()),
        }
        *aliases += 1;
        let alias = format!("x{aliases}");
        let table = self.schema.table_for(def.name);
        let mut parts: Vec<String> = Vec::new();
        match parent {
            Some((palias, pname)) => {
                for col in meta_schema::key_chain(pname) {
                    parts.push(format!("{alias}.{col} = {palias}.{col}"));
                }
            }
            None => parts.push(format!("{alias}.policy_id = applicable_policy.policy_id")),
        }
        if let Some(pred) = &step.predicate {
            parts.push(self.pred_condition(pred, &alias, def.name, aliases)?);
        }
        Ok(format!(
            "EXISTS (SELECT * FROM {table} {alias} WHERE {})",
            parts.join(" AND ")
        ))
    }

    fn pred_condition(
        &self,
        pred: &Pred,
        alias: &str,
        elem: &str,
        aliases: &mut usize,
    ) -> Result<String, XQueryError> {
        match pred {
            Pred::And(ps) => {
                let parts: Vec<String> = ps
                    .iter()
                    .map(|p| self.pred_condition(p, alias, elem, aliases))
                    .collect::<Result<_, _>>()?;
                Ok(format!("({})", parts.join(" AND ")))
            }
            Pred::Or(ps) => {
                let parts: Vec<String> = ps
                    .iter()
                    .map(|p| self.pred_condition(p, alias, elem, aliases))
                    .collect::<Result<_, _>>()?;
                Ok(format!("({})", parts.join(" OR ")))
            }
            Pred::Not(p) => Ok(format!(
                "NOT ({})",
                self.pred_condition(p, alias, elem, aliases)?
            )),
            Pred::AttrEq(name, value) => {
                let def = meta_schema::find(elem).expect("caller verified");
                if def.attrs.iter().any(|a| a == name) {
                    Ok(format!(
                        "{alias}.{} = {}",
                        meta_schema::sql_name(name),
                        sql_quote(value)
                    ))
                } else {
                    Ok("1 = 0".to_string())
                }
            }
            Pred::Exists(steps) => self.path_condition(steps, alias, elem, aliases),
            Pred::OnlyChildren(_) => unreachable!("rejected in compile()"),
        }
    }

    /// A relative path becomes nested EXISTS conditions.
    fn path_condition(
        &self,
        steps: &[Step],
        parent_alias: &str,
        parent_elem: &str,
        aliases: &mut usize,
    ) -> Result<String, XQueryError> {
        let Some((first, rest)) = steps.split_first() else {
            return Ok("1 = 1".to_string());
        };
        if rest.is_empty() {
            return self.step_condition(first, Some((parent_alias, parent_elem)), aliases);
        }
        // Fold: EXISTS(first ... AND <rest under first>). Rebuild the
        // first step without its own predicate merge problems by
        // compiling first's condition with an extra conjunct.
        let Some(def) = meta_schema::find(&first.name) else {
            return Ok("1 = 0".to_string());
        };
        if def.parent != Some(meta_schema::find(parent_elem).expect("verified").name) {
            return Ok("1 = 0".to_string());
        }
        *aliases += 1;
        let alias = format!("x{aliases}");
        let table = self.schema.table_for(def.name);
        let mut parts: Vec<String> = Vec::new();
        for col in meta_schema::key_chain(parent_elem) {
            parts.push(format!("{alias}.{col} = {parent_alias}.{col}"));
        }
        if let Some(pred) = &first.predicate {
            parts.push(self.pred_condition(pred, &alias, def.name, aliases)?);
        }
        parts.push(self.path_condition(rest, &alias, def.name, aliases)?);
        Ok(format!(
            "EXISTS (SELECT * FROM {table} {alias} WHERE {})",
            parts.join(" AND ")
        ))
    }
}

/// Does the query contain an exactness predicate anywhere?
fn contains_only(step: &Step) -> bool {
    step.predicate.as_ref().is_some_and(pred_contains_only)
}

fn pred_contains_only(pred: &Pred) -> bool {
    match pred {
        Pred::OnlyChildren(_) => true,
        Pred::And(ps) | Pred::Or(ps) => ps.iter().any(pred_contains_only),
        Pred::Not(p) => pred_contains_only(p),
        Pred::Exists(steps) => steps.iter().any(contains_only),
        Pred::AttrEq(_, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3p_xquery::parse::parse_xquery;

    fn compiler() -> XTable {
        XTable::new(GenericSchema::default())
    }

    fn compile(q: &str) -> Result<String, XQueryError> {
        compiler().compile(&parse_xquery(q).unwrap())
    }

    #[test]
    fn figure_18_compiles_to_figure_13_shape() {
        let sql = compile(
            "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>",
        )
        .unwrap();
        for marker in [
            "SELECT 'block' FROM applicable_policy",
            "FROM g_policy",
            "FROM g_statement",
            "FROM g_purpose",
            "FROM g_admin",
            "FROM g_contact",
            ".required = 'always'",
        ] {
            assert!(sql.contains(marker), "missing {marker} in:\n{sql}");
        }
        p3p_minidb::sql::parse_statement(&sql).unwrap();
    }

    #[test]
    fn multi_step_paths_nest() {
        let sql = compile(
            "if (document(\"p\")/POLICY[STATEMENT/DATA-GROUP/DATA[@ref = \"#user.name\"]]) then <block/>",
        )
        .unwrap();
        assert!(sql.contains("FROM g_data_group"), "{sql}");
        assert!(sql.contains("FROM g_data "), "{sql}");
        p3p_minidb::sql::parse_statement(&sql).unwrap();
    }

    #[test]
    fn not_compiles() {
        let sql = compile(
            "if (document(\"p\")/POLICY[not(STATEMENT[RECIPIENT[unrelated]])]) then <request/>",
        )
        .unwrap();
        assert!(sql.contains("NOT (EXISTS"), "{sql}");
        p3p_minidb::sql::parse_statement(&sql).unwrap();
    }

    #[test]
    fn only_predicate_is_too_complex() {
        let err = compile(
            "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[(current or admin) and only(current, admin)]]]) then <request/>",
        )
        .unwrap_err();
        assert!(matches!(err, XQueryError::TooComplex { .. }), "{err}");
    }

    #[test]
    fn size_limit_rejects_huge_queries() {
        let mut c = compiler();
        c.size_limit = 3;
        let err = c
            .compile(
                &parse_xquery(
                    "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[admin or develop]]]) then <block/>",
                )
                .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, XQueryError::TooComplex { .. }));
    }

    #[test]
    fn unknown_elements_become_false() {
        let sql = compile("if (document(\"p\")/POLICY[WEIRD]) then <block/>").unwrap();
        assert!(sql.contains("1 = 0"), "{sql}");
    }

    #[test]
    fn misplaced_elements_become_false() {
        let sql = compile("if (document(\"p\")/POLICY[PURPOSE[admin]]) then <block/>").unwrap();
        assert!(sql.contains("1 = 0"), "{sql}");
    }

    #[test]
    fn unknown_attribute_becomes_false() {
        let sql = compile(
            "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[contact[@weird = \"x\"]]]]) then <block/>",
        )
        .unwrap();
        assert!(sql.contains("1 = 0"), "{sql}");
    }

    #[test]
    fn compiled_sql_runs_against_shredded_tables() {
        use p3p_policy::augment::augment_policy;
        use p3p_policy::model::volga_policy;
        use p3p_policy::serialize::policy_to_element;

        let mut db = p3p_minidb::Database::new();
        let schema = GenericSchema::default();
        schema.install(&mut db).unwrap();
        db.execute("CREATE TABLE applicable_policy (policy_id INT NOT NULL)")
            .unwrap();
        db.execute("INSERT INTO applicable_policy VALUES (1)")
            .unwrap();
        schema
            .shred(
                &mut db,
                1,
                &policy_to_element(&augment_policy(&volga_policy())),
            )
            .unwrap();

        // Volga: no admin, contact only opt-in → empty result.
        let sql = compile(
            "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>",
        )
        .unwrap();
        assert!(db.query(&sql).unwrap().is_empty());

        // current is present → the request query returns one row.
        let sql2 =
            compile("if (document(\"p\")/POLICY[STATEMENT[PURPOSE[current]]]) then <request/>")
                .unwrap();
        let r = db.query(&sql2).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_str(), Some("request"));
    }
}
