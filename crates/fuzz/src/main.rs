//! The fuzzing CLI.
//!
//! ```text
//! cargo run --release -p p3p-fuzz -- --seed 42 --cases 1000
//! ```
//!
//! Runs `--cases` seeded differential cases (case *i* uses seed
//! `--seed + i`): every engine × evaluation-path × knob combination
//! must agree with the native APPEL reference, and periodic
//! metamorphic minidb passes must be row-identical under every
//! execution knob. On divergence the counterexample is shrunk and
//! printed as a ready-to-paste regression test for
//! `tests/fuzz_regressions.rs`, and the process exits non-zero.
//!
//! The `P3P_FUZZ_CASES` environment variable overrides `--cases` —
//! that is how `scripts/check.sh` bounds its smoke run.

use p3p_fuzz::{check_case, gen_case, run, shrink};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed: u64 = 42;
    let mut cases: usize = 200;
    let mut metamorphic_every: usize = 10;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", args[i]))
        };
        match args[i].as_str() {
            "--seed" => {
                seed = value(i).parse().expect("--seed takes a u64");
                i += 2;
            }
            "--cases" => {
                cases = value(i).parse().expect("--cases takes a count");
                i += 2;
            }
            "--metamorphic-every" => {
                metamorphic_every = value(i).parse().expect("--metamorphic-every takes a count");
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: p3p-fuzz [--seed N] [--cases N] [--metamorphic-every N]\n\
                     env: P3P_FUZZ_CASES overrides --cases"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Ok(env_cases) = std::env::var("P3P_FUZZ_CASES") {
        cases = env_cases
            .parse()
            .expect("P3P_FUZZ_CASES must be a case count");
    }

    println!("fuzzing {cases} cases from seed {seed} ...");
    let (stats, failure) = run(seed, cases, metamorphic_every);
    println!(
        "cases: {}  paths compared: {}  unsupported (skipped): {}  \
         metamorphic queries: {}",
        stats.cases, stats.paths_compared, stats.paths_unsupported, stats.metamorphic_queries
    );

    let mut failed = false;
    if stats.metamorphic_mismatches > 0 {
        eprintln!(
            "FAIL: {} metamorphic row mismatches",
            stats.metamorphic_mismatches
        );
        failed = true;
    }
    if let Some((case, report)) = failure {
        eprintln!(
            "FAIL: {} verdict divergences, first case:",
            stats.divergences
        );
        for d in &report.divergences {
            eprintln!("  {d}");
        }
        // Locate the case's seed for provenance (it is one of ours).
        let case_seed = (seed..seed + cases as u64)
            .find(|s| gen_case(*s) == case)
            .map(|s| format!("seed {s}"))
            .unwrap_or_else(|| "seed unknown".to_string());
        eprintln!("shrinking ...");
        let shrunk = shrink::shrink(&case, |c| !check_case(c).divergences.is_empty());
        let path = report
            .divergences
            .first()
            .map(|d| d.path.clone())
            .unwrap_or_default();
        eprintln!(
            "minimal repro ({} policies, {} statements, {} rules) — paste into \
             tests/fuzz_regressions.rs:\n\n{}",
            shrunk.policies.len(),
            shrink::statement_count(&shrunk),
            shrunk.ruleset.rules.len(),
            shrink::emit_repro(&shrunk, &format!("{case_seed}, diverging path {path}"))
        );
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("no divergences.");
        ExitCode::SUCCESS
    }
}
