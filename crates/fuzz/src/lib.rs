//! # p3p-fuzz — cross-engine differential fuzzing
//!
//! The paper's central claim (§5–6) is that translating APPEL into SQL
//! preserves APPEL semantics. The suite checks that claim on the fixed
//! workload corpus; this crate checks it on *arbitrary* inputs: seeded
//! random policies and rulesets from [`p3p_workload::gen`] are
//! installed into a [`PolicyServer`] and matched by every engine over
//! every evaluation path — per-policy loop, set-at-a-time
//! [`PolicyServer::match_corpus`], sharded
//! [`MatchPool`](p3p_server::concurrent::MatchPool) — and under every
//! optimization knob added since PR 2 (planner on/off, forced EXISTS
//! decorrelation, snapshot clones, execution profiling on/off, and the
//! columnar batch executor vs the row-at-a-time interpreter). The
//! native APPEL engine is the reference; any verdict disagreement is a
//! [`Divergence`].
//!
//! Engines may *decline* a case: exact connectives on structural
//! elements translate to a typed [`ServerError::Unsupported`], and the
//! XTABLE stand-in keeps the paper's complexity hole. Declining is
//! fine — answering differently is not. Any other error is reported as
//! a divergence.
//!
//! On divergence, [`shrink::shrink`] greedily deletes policies,
//! statements, rules, and pattern nodes while the divergence still
//! reproduces, and [`shrink::emit_repro`] renders the minimal case as
//! a ready-to-paste regression test (see `tests/fuzz_regressions.rs`
//! at the workspace root, which consumes [`assert_no_divergence`] —
//! the same entry point the emitted test calls).

pub mod metamorphic;
pub mod shrink;

use p3p_appel::engine::AppelEngine;
use p3p_appel::{Ruleset, Verdict};
use p3p_policy::Policy;
use p3p_server::concurrent::{MatchPool, SharedServer};
use p3p_server::{EngineKind, PolicyServer, ServerError, Target};
use p3p_workload::gen::{self, ChurnConfig, ChurnOp, GenConfig};
use p3p_workload::rng::SmallRng;
use std::collections::HashMap;

/// One generated input: a policy corpus plus a preference ruleset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    pub policies: Vec<Policy>,
    pub ruleset: Ruleset,
}

/// Generate the case for `seed`. The same seed always produces the
/// same case, on every platform — that is what makes a CI failure
/// replayable with `cargo run -p p3p-fuzz -- --seed <seed> --cases 1`.
pub fn gen_case(seed: u64) -> FuzzCase {
    let cfg = GenConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range_inclusive(1, 4);
    FuzzCase {
        policies: gen::gen_corpus(&mut rng, n, &cfg),
        ruleset: gen::gen_ruleset(&mut rng, &cfg),
    }
}

/// One disagreement between an evaluation path and the native
/// reference (or a non-`Unsupported` engine error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which engine/path/knob produced the wrong answer, e.g.
    /// `sql/bulk` or `sql_generic/loop planner-off`.
    pub path: String,
    /// The policy whose verdict disagreed (empty for whole-path
    /// errors).
    pub policy: String,
    /// The native reference verdict.
    pub expected: String,
    /// What the path answered instead.
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] policy `{}`: expected {}, got {}",
            self.path, self.policy, self.expected, self.actual
        )
    }
}

/// The outcome of running one case through the oracle.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// Evaluation paths whose verdicts were compared to the reference.
    pub paths_compared: usize,
    /// Paths skipped because the engine declined with a typed
    /// `Unsupported` (exactness holes, XTABLE complexity limit).
    pub paths_unsupported: usize,
    /// All disagreements found.
    pub divergences: Vec<Divergence>,
}

impl CaseReport {
    fn verdicts_match(
        &mut self,
        path: &str,
        reference: &[(String, Verdict)],
        result: Result<Vec<(String, Verdict)>, ServerError>,
    ) {
        match result {
            Ok(actual) => {
                self.paths_compared += 1;
                if actual.len() != reference.len() {
                    self.divergences.push(Divergence {
                        path: path.to_string(),
                        policy: String::new(),
                        expected: format!("{} verdicts", reference.len()),
                        actual: format!("{} verdicts", actual.len()),
                    });
                    return;
                }
                for ((name, want), (got_name, got)) in reference.iter().zip(&actual) {
                    if name != got_name || want != got {
                        self.divergences.push(Divergence {
                            path: path.to_string(),
                            policy: name.clone(),
                            expected: format!("{want:?}"),
                            actual: format!("{got_name}: {got:?}"),
                        });
                    }
                }
            }
            Err(ServerError::Unsupported(_)) => self.paths_unsupported += 1,
            Err(e) => self.divergences.push(Divergence {
                path: path.to_string(),
                policy: String::new(),
                expected: "a verdict or a typed Unsupported".to_string(),
                actual: format!("error: {e}"),
            }),
        }
    }
}

/// Per-policy loop verdicts in name order — the shape
/// [`PolicyServer::match_corpus`] returns, so both paths compare
/// directly.
fn loop_verdicts(
    server: &PolicyServer,
    ruleset: &Ruleset,
    engine: EngineKind,
    names: &[String],
) -> Result<Vec<(String, Verdict)>, ServerError> {
    names
        .iter()
        .map(|n| {
            server
                .match_preference_snapshot(ruleset, Target::Policy(n), engine)
                .map(|o| (n.clone(), o.verdict))
        })
        .collect()
}

/// Run the full oracle on one case: install the policies once, take
/// the native per-policy loop as the reference, then compare every
/// engine over the loop, bulk, and sharded paths, plus the
/// planner-off, forced-decorrelation, and snapshot-clone knob
/// variants for the SQL engines.
pub fn check_case(case: &FuzzCase) -> CaseReport {
    let mut server = PolicyServer::new();
    for p in &case.policies {
        server
            .install_policy(p)
            .unwrap_or_else(|e| panic!("generated policy `{}` failed to install: {e}", p.name));
    }
    let names = server.policy_names();
    let reference = loop_verdicts(&server, &case.ruleset, EngineKind::Native, &names)
        .expect("the native engine evaluates every generated case");

    let mut report = CaseReport::default();
    // The native loop IS the reference; count it as a compared path so
    // totals reflect the whole matrix.
    report.paths_compared += 1;

    for &engine in EngineKind::ALL {
        let label = engine.metric_label();
        if engine != EngineKind::Native {
            report.verdicts_match(
                &format!("{label}/loop"),
                &reference,
                loop_verdicts(&server, &case.ruleset, engine, &names),
            );
        }
        report.verdicts_match(
            &format!("{label}/bulk"),
            &reference,
            server.match_corpus(&case.ruleset, engine),
        );
    }

    // Sharded corpus sweep off a shared snapshot (three shards so
    // shard-boundary reassembly is actually exercised).
    let pool = MatchPool::new(&SharedServer::new(server.clone_state()));
    for &engine in &[EngineKind::Native, EngineKind::Sql, EngineKind::SqlGeneric] {
        report.verdicts_match(
            &format!("{}/sharded", engine.metric_label()),
            &reference,
            pool.match_corpus(&case.ruleset, engine, 3),
        );
    }

    // Knob: cost-based join planner off. The plan changes; the rows —
    // and therefore the verdicts — must not.
    let mut planner_off = server.clone_state();
    planner_off.database_mut().set_use_planner(false);
    for &engine in &[EngineKind::Sql, EngineKind::SqlGeneric] {
        report.verdicts_match(
            &format!("{}/loop planner-off", engine.metric_label()),
            &reference,
            loop_verdicts(&planner_off, &case.ruleset, engine, &names),
        );
    }

    // Knob: EXISTS decorrelation forced on (threshold 0) and pinned
    // off (threshold MAX). Both extremes must answer like the
    // adaptive default.
    for (threshold, tag) in [(Some(0), "decorrelate"), (Some(u32::MAX), "nested-loop")] {
        p3p_minidb::exec::set_decorrelate_after(threshold);
        for &engine in &[EngineKind::Sql, EngineKind::SqlGeneric] {
            report.verdicts_match(
                &format!("{}/bulk {tag}", engine.metric_label()),
                &reference,
                server.match_corpus(&case.ruleset, engine),
            );
        }
        p3p_minidb::exec::set_decorrelate_after(None);
    }

    // Knob: execution profiling on. The profiler is observation-only;
    // every path must answer byte-identically with it enabled.
    p3p_minidb::exec::set_profiling(true);
    for &engine in &[EngineKind::Sql, EngineKind::SqlGeneric] {
        let label = engine.metric_label();
        report.verdicts_match(
            &format!("{label}/loop profiled"),
            &reference,
            loop_verdicts(&server, &case.ruleset, engine, &names),
        );
        report.verdicts_match(
            &format!("{label}/bulk profiled"),
            &reference,
            server.match_corpus(&case.ruleset, engine),
        );
    }
    p3p_minidb::exec::set_profiling(false);

    // Knob: columnar batch executor off. Every path above ran with the
    // columnar engine engaging wherever eligible (it is on by default);
    // pinning it off forces the row-at-a-time interpreter everywhere,
    // and the two executors must answer identically.
    p3p_minidb::exec::set_columnar(false);
    for &engine in &[EngineKind::Sql, EngineKind::SqlGeneric] {
        let label = engine.metric_label();
        report.verdicts_match(
            &format!("{label}/loop row-executor"),
            &reference,
            loop_verdicts(&server, &case.ruleset, engine, &names),
        );
        report.verdicts_match(
            &format!("{label}/bulk row-executor"),
            &reference,
            server.match_corpus(&case.ruleset, engine),
        );
    }
    p3p_minidb::exec::set_columnar(true);

    // Knob: a COW snapshot clone must answer exactly like the server
    // it was cloned from.
    let snapshot = server.clone_state();
    for &engine in &[EngineKind::Native, EngineKind::Sql, EngineKind::SqlGeneric] {
        report.verdicts_match(
            &format!("{}/loop snapshot", engine.metric_label()),
            &reference,
            loop_verdicts(&snapshot, &case.ruleset, engine, &names),
        );
    }

    report
}

/// The outcome of one update-interleaved churn check.
#[derive(Debug, Clone, Default)]
pub struct ChurnCheck {
    /// Operations replayed (installs + replaces + retracts + matches).
    pub ops: usize,
    /// Individual match evaluations compared (per engine, per twin).
    pub matches: usize,
    /// Verdict-cache hits observed on the cache-enabled twin.
    pub cache_hits: u64,
    /// Evaluations skipped because an engine declined with a typed
    /// `Unsupported` on both twins.
    pub paths_unsupported: usize,
    /// Snapshot-isolation or agreement violations.
    pub divergences: Vec<Divergence>,
}

/// Replay a seeded install/replace/retract stream interleaved with
/// matching against two twin servers — one with the memoized verdict
/// cache enabled, one cold — and assert snapshot isolation throughout:
///
/// * every verdict is stamped with exactly the catalog epoch the
///   serialized stream had reached (no verdict is explainable by a
///   past or future catalog);
/// * the cached twin and the cold twin agree on every verdict, so a
///   cache hit can never resurrect a pre-update verdict;
/// * both agree with an independent native APPEL evaluation of the
///   tracked live policy XML (the catalog-free reference).
pub fn check_churn(seed: u64) -> ChurnCheck {
    let cfg = ChurnConfig {
        initial_policies: 6,
        ops: 60,
        churn_rate: 0.12,
        rulesets: 3,
        gen: GenConfig::default(),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let stream = gen::gen_churn_stream(&mut rng, &cfg);

    let mut cached = PolicyServer::new();
    cached.set_verdict_cache_capacity(4096);
    let mut cold = PolicyServer::new();
    let reference = AppelEngine::default();
    // name → live policy XML, maintained outside any server: the
    // independent source of truth for what each match should see.
    let mut live: HashMap<String, String> = HashMap::new();
    let mut epoch = 0u64;

    let mut check = ChurnCheck::default();
    let install = |cached: &mut PolicyServer,
                   cold: &mut PolicyServer,
                   live: &mut HashMap<String, String>,
                   epoch: &mut u64,
                   p: &Policy| {
        cached.install_policy(p).expect("install on cached twin");
        cold.install_policy(p).expect("install on cold twin");
        live.insert(p.name.clone(), p.to_xml());
        *epoch += 1;
    };
    for p in &stream.initial {
        install(&mut cached, &mut cold, &mut live, &mut epoch, p);
    }

    for op in &stream.ops {
        check.ops += 1;
        match op {
            ChurnOp::Install(p) => {
                install(&mut cached, &mut cold, &mut live, &mut epoch, p);
            }
            ChurnOp::Replace(p) => {
                cached.remove_policy(&p.name).expect("replace-remove");
                cold.remove_policy(&p.name).expect("replace-remove");
                epoch += 1;
                install(&mut cached, &mut cold, &mut live, &mut epoch, p);
            }
            ChurnOp::Retract(name) => {
                cached.remove_policy(name).expect("retract");
                cold.remove_policy(name).expect("retract");
                live.remove(name);
                epoch += 1;
            }
            ChurnOp::Match { policy, ruleset } => {
                let ruleset = &stream.rulesets[*ruleset];
                let expected = reference
                    .evaluate_policy_xml(ruleset, &live[policy])
                    .expect("native reference evaluates every generated case");
                for &engine in &[EngineKind::Native, EngineKind::Sql, EngineKind::SqlGeneric] {
                    let warm =
                        cached.match_preference_snapshot(ruleset, Target::Policy(policy), engine);
                    let chill =
                        cold.match_preference_snapshot(ruleset, Target::Policy(policy), engine);
                    let path = format!("{}/churn", engine.metric_label());
                    match (warm, chill) {
                        (Ok(warm), Ok(chill)) => {
                            check.matches += 2;
                            if warm.verdict_cached {
                                check.cache_hits += 1;
                            }
                            for (tag, out) in [("cached", &warm), ("cold", &chill)] {
                                if out.epoch != epoch {
                                    check.divergences.push(Divergence {
                                        path: format!("{path} {tag}"),
                                        policy: policy.clone(),
                                        expected: format!("epoch {epoch}"),
                                        actual: format!("epoch {}", out.epoch),
                                    });
                                }
                            }
                            if warm.verdict != chill.verdict {
                                check.divergences.push(Divergence {
                                    path: format!("{path} cached-vs-cold"),
                                    policy: policy.clone(),
                                    expected: format!("{:?}", chill.verdict),
                                    actual: format!("{:?}", warm.verdict),
                                });
                            }
                            if warm.verdict != expected {
                                check.divergences.push(Divergence {
                                    path,
                                    policy: policy.clone(),
                                    expected: format!("{expected:?}"),
                                    actual: format!("{:?}", warm.verdict),
                                });
                            }
                        }
                        (Err(ServerError::Unsupported(_)), Err(ServerError::Unsupported(_))) => {
                            check.paths_unsupported += 1
                        }
                        (warm, chill) => {
                            check.divergences.push(Divergence {
                                path,
                                policy: policy.clone(),
                                expected: "both twins agreeing".to_string(),
                                actual: format!(
                                    "cached: {:?}, cold: {:?}",
                                    warm.map(|o| o.verdict),
                                    chill.map(|o| o.verdict)
                                ),
                            });
                        }
                    }
                }
            }
        }
        // Between ops, both catalogs sit at the serialized epoch.
        for (tag, s) in [("cached", &cached), ("cold", &cold)] {
            if s.catalog_epoch() != epoch {
                check.divergences.push(Divergence {
                    path: format!("catalog/{tag}"),
                    policy: String::new(),
                    expected: format!("epoch {epoch}"),
                    actual: format!("epoch {}", s.catalog_epoch()),
                });
            }
        }
    }
    check
}

/// Aggregate statistics over a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub cases: usize,
    pub paths_compared: usize,
    pub paths_unsupported: usize,
    pub divergences: usize,
    pub metamorphic_queries: usize,
    pub metamorphic_mismatches: usize,
    /// Update-interleaved churn checks run (on the metamorphic cadence).
    pub churn_checks: usize,
    /// Match evaluations compared inside those churn checks.
    pub churn_matches: usize,
    /// Verdict-cache hits the cache-enabled churn twin served.
    pub churn_cache_hits: u64,
    /// Snapshot-isolation or cached-vs-cold violations (must be 0).
    pub churn_divergences: usize,
}

/// Run `cases` seeded cases starting at `seed` (case *i* uses seed
/// `seed + i`). Every `metamorphic_every`-th case additionally runs
/// the minidb row-identity checks (0 disables them). Returns the
/// aggregate stats and, when a verdict divergence was found, the first
/// offending case and its report.
pub fn run(
    seed: u64,
    cases: usize,
    metamorphic_every: usize,
) -> (RunStats, Option<(FuzzCase, CaseReport)>) {
    let mut stats = RunStats::default();
    let mut failure = None;
    for i in 0..cases {
        let case = gen_case(seed + i as u64);
        let report = check_case(&case);
        stats.cases += 1;
        stats.paths_compared += report.paths_compared;
        stats.paths_unsupported += report.paths_unsupported;
        stats.divergences += report.divergences.len();
        if !report.divergences.is_empty() && failure.is_none() {
            failure = Some((case.clone(), report));
        }
        if metamorphic_every > 0 && i % metamorphic_every == 0 {
            let meta = metamorphic::check_minidb(&case);
            stats.metamorphic_queries += meta.queries;
            stats.metamorphic_mismatches += meta.mismatches.len();
            // Same cadence for the update-interleaved knob: churn the
            // catalog between matches and require snapshot isolation.
            let churn = check_churn(seed + i as u64);
            stats.churn_checks += 1;
            stats.churn_matches += churn.matches;
            stats.churn_cache_hits += churn.cache_hits;
            stats.churn_divergences += churn.divergences.len();
            if !churn.divergences.is_empty() {
                eprintln!(
                    "churn divergences at seed {}:\n{}",
                    seed + i as u64,
                    churn
                        .divergences
                        .iter()
                        .map(|d| format!("  {d}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
    }
    (stats, failure)
}

/// The entry point shrunk repros call (see `tests/fuzz_regressions.rs`
/// at the workspace root): parse the given policy and ruleset XML,
/// run the full oracle, and panic with every divergence if any path
/// disagrees with the native reference.
pub fn assert_no_divergence(policy_xmls: &[&str], ruleset_xml: &str) {
    let policies: Vec<Policy> = policy_xmls
        .iter()
        .map(|x| Policy::parse(x).expect("repro policy XML must parse"))
        .collect();
    let ruleset = Ruleset::parse(ruleset_xml).expect("repro ruleset XML must parse");
    let case = FuzzCase { policies, ruleset };
    let report = check_case(&case);
    assert!(
        report.divergences.is_empty(),
        "cross-engine divergence:\n{}",
        report
            .divergences
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_cases_have_no_divergence() {
        let (stats, failure) = run(42, 25, 5);
        assert_eq!(stats.cases, 25);
        assert!(stats.paths_compared > 25, "oracle must compare many paths");
        if let Some((case, report)) = failure {
            panic!(
                "divergences:\n{}\nrepro:\n{}",
                report
                    .divergences
                    .iter()
                    .map(|d| format!("  {d}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
                shrink::emit_repro(&case, "seed unknown")
            );
        }
        assert_eq!(stats.metamorphic_mismatches, 0);
        assert!(stats.churn_checks > 0, "churn knob must run on the cadence");
        assert_eq!(stats.churn_divergences, 0);
    }

    #[test]
    fn churn_streams_preserve_snapshot_isolation() {
        for seed in [1u64, 99, 4242] {
            let check = check_churn(seed);
            assert!(check.ops > 0);
            assert!(check.matches > 0, "seed {seed} compared no matches");
            assert!(
                check.divergences.is_empty(),
                "seed {seed}:\n{}",
                check
                    .divergences
                    .iter()
                    .map(|d| format!("  {d}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            assert!(
                check.cache_hits > 0,
                "seed {seed}: the cached twin never hit — the knob is inert"
            );
        }
    }

    #[test]
    fn gen_case_is_deterministic() {
        assert_eq!(gen_case(7), gen_case(7));
        assert_ne!(gen_case(7), gen_case(8));
    }

    #[test]
    fn jane_volga_case_agrees_everywhere() {
        assert_no_divergence(
            &[&p3p_policy::model::volga_policy().to_xml()],
            &p3p_appel::model::jane_preference().to_xml(),
        );
    }
}
