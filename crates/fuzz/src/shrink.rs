//! Greedy counterexample shrinking.
//!
//! Given a failing [`FuzzCase`] and a predicate that tells whether a
//! candidate still fails, [`shrink`] repeatedly applies the smallest
//! useful deletions — drop a policy, a statement, a rule, a pattern
//! subtree, an attribute constraint — keeping a deletion only when the
//! shrunk case is still structurally valid *and* still reproduces the
//! failure. The loop restarts after every accepted deletion and stops
//! at a fixpoint, so the result is 1-minimal with respect to the
//! deletion operators: removing any single remaining part makes the
//! failure vanish.
//!
//! [`emit_repro`] then renders the minimal case as a ready-to-paste
//! `#[test]` calling [`crate::assert_no_divergence`], the format
//! `tests/fuzz_regressions.rs` checks in permanently.

use crate::FuzzCase;
use p3p_appel::Expr;
use p3p_policy::validate;

/// Is a candidate still well-formed enough to feed the oracle? The
/// oracle installs policies, so every policy must stay valid, and an
/// empty corpus or ruleset compares nothing.
fn is_viable(case: &FuzzCase) -> bool {
    !case.policies.is_empty()
        && !case.ruleset.rules.is_empty()
        && case.policies.iter().all(|p| validate::check(p).is_ok())
}

/// Shrink `case` while `reproduces` holds. `reproduces` is typically
/// `|c| !check_case(c).divergences.is_empty()`, but any predicate
/// works — which is also how the shrinker itself is tested without a
/// live engine bug.
pub fn shrink(case: &FuzzCase, reproduces: impl Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut current = case.clone();
    'restart: loop {
        for candidate in candidates(&current) {
            if is_viable(&candidate) && reproduces(&candidate) {
                current = candidate;
                continue 'restart;
            }
        }
        return current;
    }
}

/// Every case reachable from `case` by one deletion, in the order the
/// greedy loop tries them: coarse deletions (whole policies, whole
/// rules) first so the case collapses fast, fine-grained ones after.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Drop a whole policy.
    for i in 0..case.policies.len() {
        let mut c = case.clone();
        c.policies.remove(i);
        out.push(c);
    }
    // Drop a whole rule.
    for i in 0..case.ruleset.rules.len() {
        let mut c = case.clone();
        c.ruleset.rules.remove(i);
        out.push(c);
    }
    // Drop a statement.
    for (pi, p) in case.policies.iter().enumerate() {
        for si in 0..p.statements.len() {
            let mut c = case.clone();
            c.policies[pi].statements.remove(si);
            out.push(c);
        }
    }
    // Thin a statement: drop one purpose / recipient / data group /
    // data ref / explicit category.
    for (pi, p) in case.policies.iter().enumerate() {
        for (si, s) in p.statements.iter().enumerate() {
            for f in 0..s.purposes.len() {
                let mut c = case.clone();
                c.policies[pi].statements[si].purposes.remove(f);
                out.push(c);
            }
            for f in 0..s.recipients.len() {
                let mut c = case.clone();
                c.policies[pi].statements[si].recipients.remove(f);
                out.push(c);
            }
            for (gi, g) in s.data_groups.iter().enumerate() {
                let mut c = case.clone();
                c.policies[pi].statements[si].data_groups.remove(gi);
                out.push(c);
                for di in 0..g.data.len() {
                    let mut c = case.clone();
                    c.policies[pi].statements[si].data_groups[gi]
                        .data
                        .remove(di);
                    out.push(c);
                    for ci in 0..g.data[di].categories.len() {
                        let mut c = case.clone();
                        c.policies[pi].statements[si].data_groups[gi].data[di]
                            .categories
                            .remove(ci);
                        out.push(c);
                    }
                }
            }
        }
    }
    // Thin a rule's pattern: drop one expression node (anywhere in the
    // tree) or one attribute constraint.
    for (ri, r) in case.ruleset.rules.iter().enumerate() {
        for ei in 0..r.pattern.len() {
            let mut c = case.clone();
            c.ruleset.rules[ri].pattern.remove(ei);
            out.push(c);
            for variant in expr_deletions(&r.pattern[ei]) {
                let mut c = case.clone();
                c.ruleset.rules[ri].pattern[ei] = variant;
                out.push(c);
            }
        }
    }
    out
}

/// Every expression reachable from `expr` by deleting one descendant
/// node or one attribute somewhere in its subtree.
fn expr_deletions(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    for i in 0..expr.children.len() {
        let mut e = expr.clone();
        e.children.remove(i);
        out.push(e);
        for variant in expr_deletions(&expr.children[i]) {
            let mut e = expr.clone();
            e.children[i] = variant;
            out.push(e);
        }
    }
    for i in 0..expr.attributes.len() {
        let mut e = expr.clone();
        e.attributes.remove(i);
        out.push(e);
    }
    out
}

/// Render a shrunk case as a ready-to-paste regression test.
/// `provenance` goes into the doc comment (typically the seed and the
/// diverging path) so the test records where it came from.
pub fn emit_repro(case: &FuzzCase, provenance: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("/// Shrunk by the fuzzer: {provenance}.\n"));
    out.push_str("#[test]\nfn shrunk_divergence() {\n");
    out.push_str("    p3p_fuzz::assert_no_divergence(\n        &[\n");
    // Double-hash raw strings: the XML is full of `ref="#..."`, whose
    // `"#` sequence would terminate a plain `r#"..."#` literal.
    for p in &case.policies {
        out.push_str(&format!("            r##\"{}\"##,\n", p.to_xml()));
    }
    out.push_str("        ],\n");
    out.push_str(&format!("        r##\"{}\"##,\n", case.ruleset.to_xml()));
    out.push_str("    );\n}\n");
    out
}

/// Total statements across the case — the size the acceptance
/// criterion bounds.
pub fn statement_count(case: &FuzzCase) -> usize {
    case.policies.iter().map(|p| p.statements.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_case;
    use p3p_appel::Ruleset;
    use p3p_policy::vocab::Purpose;
    use p3p_policy::Policy;

    /// The injected fault: "the engine answers wrongly whenever some
    /// installed policy declares the `telemarketing` purpose and some
    /// rule pattern mentions a PURPOSE element". The shrinker knows
    /// nothing about this structure — it only gets the predicate —
    /// yet must collapse a many-policy, many-rule case to the minimal
    /// core: one policy, one statement, one rule.
    fn injected_fault(case: &FuzzCase) -> bool {
        fn mentions_purpose(e: &Expr) -> bool {
            e.name.local == "PURPOSE" || e.children.iter().any(mentions_purpose)
        }
        case.policies.iter().any(|p| {
            p.statements.iter().any(|s| {
                s.purposes
                    .iter()
                    .any(|u| u.purpose == Purpose::Telemarketing)
            })
        }) && case
            .ruleset
            .rules
            .iter()
            .any(|r| r.pattern.iter().any(mentions_purpose))
    }

    #[test]
    fn shrinker_reduces_injected_fault_to_minimal_core() {
        // Scan seeds for a reasonably large case exhibiting the fault,
        // so the shrinker has real work to do.
        let case = (0..200)
            .map(gen_case)
            .find(|c| injected_fault(c) && (c.policies.len() >= 2 || statement_count(c) >= 3))
            .expect("some generated case triggers the injected fault");
        let shrunk = shrink(&case, injected_fault);

        assert!(injected_fault(&shrunk), "shrinking must preserve the fault");
        assert!(is_viable(&shrunk), "shrunk case must stay valid");
        // The acceptance bound: at most 3 statements / 3 rules. The
        // greedy loop actually reaches the 1/1/1 minimum here.
        assert!(
            statement_count(&shrunk) <= 3,
            "{}",
            statement_count(&shrunk)
        );
        assert!(
            shrunk.ruleset.rules.len() <= 3,
            "{}",
            shrunk.ruleset.rules.len()
        );
        assert_eq!(shrunk.policies.len(), 1);
        assert_eq!(statement_count(&shrunk), 1);
        assert_eq!(shrunk.ruleset.rules.len(), 1);
    }

    #[test]
    fn emitted_repro_round_trips_through_the_xml_parsers() {
        let case = gen_case(3);
        let text = emit_repro(&case, "seed 3, path sql/bulk");
        assert!(text.contains("assert_no_divergence"));
        assert!(text.contains("#[test]"));
        // The embedded raw strings must not be cut short by the XML's
        // own `ref="#..."` attributes: every literal the repro opens
        // with `r##"` must close with `"##`, and the XML itself never
        // contains that closer.
        assert_eq!(
            text.matches("r##\"").count(),
            case.policies.len() + 1,
            "{text}"
        );
        assert_eq!(text.matches("\"##").count(), case.policies.len() + 1);
        // The XML embedded in the repro must parse back to the case.
        for p in &case.policies {
            assert!(!p.to_xml().contains("\"##"));
            assert_eq!(Policy::parse(&p.to_xml()).unwrap(), *p);
        }
        assert_eq!(
            Ruleset::parse(&case.ruleset.to_xml()).unwrap(),
            case.ruleset
        );
    }

    #[test]
    fn shrink_is_identity_when_nothing_smaller_reproduces() {
        let case = gen_case(11);
        // A predicate matching only the exact original case.
        let original = case.clone();
        let shrunk = shrink(&case, |c| *c == original);
        assert_eq!(shrunk, case);
    }
}
