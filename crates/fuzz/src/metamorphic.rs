//! Metamorphic row-identity checks on the minidb layer.
//!
//! The verdict oracle in [`crate::check_case`] sees optimization bugs
//! only when they flip a verdict. These checks look one layer down:
//! the corpus-form SQL each rule translates to (parameter-free, one
//! query per rule) is executed against the shredded database under
//! every execution-knob variant, and the *row sets* — not just the
//! folded verdicts — must be identical:
//!
//! * cost-based join planner on vs off,
//! * prepared-and-cached plan vs a cold [`Database::prepare_uncached`],
//! * first execution vs re-execution through the plan cache,
//! * the original database vs a copy-on-write clone,
//! * EXISTS decorrelation forced on (threshold 0) vs pinned to the
//!   correlated nested loop (threshold `u32::MAX`),
//! * execution profiling on vs the unprofiled baseline,
//! * columnar batch executor on vs the row-at-a-time interpreter.

use crate::FuzzCase;
use p3p_minidb::{exec, QueryResult};
use p3p_server::appel2sql;
use p3p_server::generic::GenericSchema;
use p3p_server::PolicyServer;

/// The outcome of the metamorphic pass over one case.
#[derive(Debug, Clone, Default)]
pub struct MetamorphicReport {
    /// Corpus-form queries checked (translatable rules × 2 schemas).
    pub queries: usize,
    /// Human-readable descriptions of any row mismatches.
    pub mismatches: Vec<String>,
}

/// Run every knob variant of every translatable corpus query and
/// compare row sets. Untranslatable rules (typed `Unsupported`) are
/// skipped — the verdict oracle already covers their classification.
pub fn check_minidb(case: &FuzzCase) -> MetamorphicReport {
    let mut server = PolicyServer::new();
    for p in &case.policies {
        server
            .install_policy(p)
            .unwrap_or_else(|e| panic!("policy `{}` failed to install: {e}", p.name));
    }
    let schema = GenericSchema::default();
    let mut sqls: Vec<(String, String)> = Vec::new();
    for (i, rule) in case.ruleset.rules.iter().enumerate() {
        if let Ok(sql) = appel2sql::translate_rule_optimized_corpus(rule) {
            sqls.push((format!("rule {i} (optimized)"), sql));
        }
        if let Ok(sql) = appel2sql::translate_rule_generic_corpus(rule, &schema) {
            sqls.push((format!("rule {i} (generic)"), sql));
        }
    }

    let mut report = MetamorphicReport::default();
    let db = server.database();
    for (label, sql) in &sqls {
        report.queries += 1;
        let baseline = match db.query(sql) {
            Ok(r) => r,
            Err(e) => {
                report
                    .mismatches
                    .push(format!("{label}: baseline execution failed: {e}"));
                continue;
            }
        };
        let mut expect = |tag: &str, result: Result<QueryResult, p3p_minidb::DbError>| match result
        {
            Ok(r) if r == baseline => {}
            Ok(r) => report.mismatches.push(format!(
                "{label}: {tag} returned {} rows, baseline {}",
                r.rows.len(),
                baseline.rows.len()
            )),
            Err(e) => report
                .mismatches
                .push(format!("{label}: {tag} failed: {e}")),
        };

        // Planner off: same rows from syntactic FROM-order joins.
        let mut unplanned = db.clone();
        unplanned.set_use_planner(false);
        expect("planner-off", unplanned.query(sql));

        // Cold prepare (no plan cache) vs the cached prepare baseline
        // used, and a re-execution through the now-warm cache.
        expect(
            "prepare-uncached",
            db.prepare_uncached(sql)
                .and_then(|p| db.query_prepared(&p, &[])),
        );
        expect("cached-reexecution", db.query(sql));

        // A copy-on-write clone must answer identically.
        expect("cow-clone", db.clone().query(sql));

        // Forced decorrelation extremes. Threshold 0 decorrelates an
        // eligible EXISTS from its second evaluation, so run the query
        // twice and compare the warm run; MAX pins the nested loop.
        exec::set_decorrelate_after(Some(0));
        let _ = db.query(sql);
        expect("decorrelated", db.query(sql));
        exec::set_decorrelate_after(Some(u32::MAX));
        expect("nested-loop", db.query(sql));
        exec::set_decorrelate_after(None);

        // Execution profiling on: the profiler observes, it must not
        // change a single row.
        exec::set_profiling(true);
        expect("profiled", db.query(sql));
        exec::set_profiling(false);

        // Columnar batch executor off: the row-at-a-time interpreter
        // must produce the identical row set (the baseline above ran
        // with columnar kernels engaging wherever eligible).
        exec::set_columnar(false);
        expect("row-executor", db.query(sql));
        exec::set_columnar(true);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_case;

    #[test]
    fn fixed_seed_cases_are_row_identical_under_all_knobs() {
        let mut queries = 0;
        for seed in 100..120 {
            let report = check_minidb(&gen_case(seed));
            assert!(
                report.mismatches.is_empty(),
                "seed {seed}: {:?}",
                report.mismatches
            );
            queries += report.queries;
        }
        assert!(queries > 0, "at least some rules must be translatable");
    }

    #[test]
    fn paper_workload_is_row_identical_under_all_knobs() {
        use p3p_workload::{corpus, Sensitivity};
        let case = FuzzCase {
            policies: corpus(42).into_iter().take(8).collect(),
            ruleset: Sensitivity::High.ruleset(),
        };
        let report = check_minidb(&case);
        assert!(report.queries > 0);
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
    }
}
