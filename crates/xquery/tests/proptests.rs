//! Randomised tests for the XQuery subset: display∘parse identity and
//! evaluation laws.
//!
//! Formerly `proptest` properties; the build environment has no
//! crates.io access, so each property now runs over a deterministic
//! stream of pseudo-random queries from an inline SplitMix64 generator.

use p3p_xmldom::ElementBuilder;
use p3p_xquery::ast::{Pred, Step, XQuery};
use p3p_xquery::eval::eval_xquery;
use p3p_xquery::parse::parse_xquery;

struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (((self.next() as u128) * (n as u128)) >> 64) as usize
    }

    /// Name that cannot collide with the grammar's keywords.
    fn name(&mut self) -> String {
        const FIRST: &[u8] = b"ABCXYZabcxyz";
        const REST: &[u8] = b"ABCXYZabcxyz019-";
        loop {
            let mut s = String::new();
            s.push(FIRST[self.index(FIRST.len())] as char);
            for _ in 0..self.index(9) {
                s.push(REST[self.index(REST.len())] as char);
            }
            if ![
                "if", "then", "else", "and", "or", "not", "only", "document", "return",
            ]
            .contains(&s.as_str())
            {
                return s;
            }
        }
    }

    fn attr_value(&mut self) -> String {
        const CHARS: &[u8] = b"abcz019.#/-";
        (0..self.index(11))
            .map(|_| CHARS[self.index(CHARS.len())] as char)
            .collect()
    }

    fn leaf_pred(&mut self) -> Pred {
        if self.index(2) == 0 {
            Pred::AttrEq(self.name(), self.attr_value())
        } else {
            let n = 1 + self.index(2);
            Pred::Exists((0..n).map(|_| Step::named(self.name())).collect())
        }
    }

    fn pred(&mut self, depth: usize) -> Pred {
        if depth == 0 {
            return self.leaf_pred();
        }
        match self.index(5) {
            0 => Pred::And(
                (0..2 + self.index(2))
                    .map(|_| self.pred(depth - 1))
                    .collect(),
            ),
            1 => Pred::Or(
                (0..2 + self.index(2))
                    .map(|_| self.pred(depth - 1))
                    .collect(),
            ),
            2 => Pred::Not(Box::new(self.pred(depth - 1))),
            3 => {
                let n = 1 + self.index(2);
                Pred::OnlyChildren((0..n).map(|_| Step::named(self.name())).collect())
            }
            _ => {
                let inner = self.pred(depth - 1);
                Pred::Exists(vec![Step::named(self.name()).with_pred(inner)])
            }
        }
    }

    fn query(&mut self) -> XQuery {
        const DOC_CHARS: &[u8] = b"abcz-";
        let document: String = (0..1 + self.index(12))
            .map(|_| DOC_CHARS[self.index(DOC_CHARS.len())] as char)
            .collect();
        let mut step = Step::named(self.name());
        if self.index(2) == 1 {
            let p = self.pred(2);
            step = step.with_pred(p);
        }
        XQuery {
            document,
            root: step,
            behavior: self.name(),
        }
    }
}

/// display ∘ parse is the identity on queries.
#[test]
fn display_parse_roundtrip() {
    for seed in 0..128 {
        let mut rng = TestRng(seed);
        let q = rng.query();
        let text = q.to_string();
        let back = parse_xquery(&text).unwrap();
        assert_eq!(q, back, "seed {seed}");
    }
}

/// Evaluation is deterministic and name-gated at the root.
#[test]
fn root_name_gates_evaluation() {
    for seed in 0..128 {
        let mut rng = TestRng(seed);
        let q = rng.query();
        let other = ElementBuilder::new("SOMETHING-ELSE-ENTIRELY").build();
        assert_eq!(eval_xquery(&q, &other), None, "seed {seed}");
    }
}

/// `not(not(p))` evaluates like `p`.
#[test]
fn double_negation() {
    for seed in 0..128 {
        let mut rng = TestRng(seed);
        let pred = rng.pred(2);
        let elem = ElementBuilder::new("POLICY")
            .child(ElementBuilder::new("STATEMENT").child(ElementBuilder::new("PURPOSE")))
            .build();
        let plain = XQuery {
            document: "d".into(),
            root: Step::named("POLICY").with_pred(pred.clone()),
            behavior: "b".into(),
        };
        let doubled = XQuery {
            document: "d".into(),
            root: Step::named("POLICY").with_pred(Pred::Not(Box::new(Pred::Not(Box::new(pred))))),
            behavior: "b".into(),
        };
        assert_eq!(
            eval_xquery(&plain, &elem),
            eval_xquery(&doubled, &elem),
            "seed {seed}"
        );
    }
}

/// And is commutative; Or is commutative.
#[test]
fn boolean_commutativity() {
    for seed in 0..128 {
        let mut rng = TestRng(seed);
        let a = rng.pred(2);
        let b = rng.pred(2);
        let elem = ElementBuilder::new("POLICY")
            .child(ElementBuilder::new("STATEMENT"))
            .build();
        let q = |p: Pred| XQuery {
            document: "d".into(),
            root: Step::named("POLICY").with_pred(p),
            behavior: "x".into(),
        };
        assert_eq!(
            eval_xquery(&q(Pred::And(vec![a.clone(), b.clone()])), &elem),
            eval_xquery(&q(Pred::And(vec![b.clone(), a.clone()])), &elem),
            "seed {seed}"
        );
        assert_eq!(
            eval_xquery(&q(Pred::Or(vec![a.clone(), b.clone()])), &elem),
            eval_xquery(&q(Pred::Or(vec![b, a])), &elem),
            "seed {seed}"
        );
    }
}

/// Query size is positive and stable under display/parse.
#[test]
fn size_is_stable() {
    for seed in 0..128 {
        let mut rng = TestRng(seed);
        let q = rng.query();
        assert!(q.size() >= 1, "seed {seed}");
        let back = parse_xquery(&q.to_string()).unwrap();
        assert_eq!(q.size(), back.size(), "seed {seed}");
    }
}
