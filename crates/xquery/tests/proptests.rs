//! Property-based tests for the XQuery subset: display∘parse identity
//! and evaluation laws.

use p3p_xmldom::ElementBuilder;
use p3p_xquery::ast::{Pred, Step, XQuery};
use p3p_xquery::eval::eval_xquery;
use p3p_xquery::parse::parse_xquery;
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,8}".prop_filter("keywords collide with the grammar", |s| {
        !["if", "then", "else", "and", "or", "not", "only", "document", "return"]
            .contains(&s.as_str())
    })
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (name_strategy(), "[a-z0-9.#/-]{0,10}")
            .prop_map(|(n, v)| Pred::AttrEq(n, v)),
        prop::collection::vec(name_strategy(), 1..3)
            .prop_map(|ns| Pred::Exists(ns.into_iter().map(Step::named).collect())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::Or),
            inner.clone().prop_map(|p| Pred::Not(Box::new(p))),
            prop::collection::vec(name_strategy(), 1..3)
                .prop_map(|ns| Pred::OnlyChildren(ns.into_iter().map(Step::named).collect())),
            (name_strategy(), inner).prop_map(|(n, p)| Pred::Exists(vec![Step::named(n)
                .with_pred(p)])),
        ]
    })
}

fn query_strategy() -> impl Strategy<Value = XQuery> {
    (
        "[a-z-]{1,12}",
        name_strategy(),
        prop::option::of(pred_strategy()),
        name_strategy(),
    )
        .prop_map(|(document, root, pred, behavior)| {
            let mut step = Step::named(root);
            if let Some(p) = pred {
                step = step.with_pred(p);
            }
            XQuery {
                document,
                root: step,
                behavior,
            }
        })
}

proptest! {
    /// display ∘ parse is the identity on queries.
    #[test]
    fn display_parse_roundtrip(q in query_strategy()) {
        let text = q.to_string();
        let back = parse_xquery(&text).unwrap();
        prop_assert_eq!(q, back);
    }

    /// Evaluation is deterministic and name-gated at the root.
    #[test]
    fn root_name_gates_evaluation(q in query_strategy()) {
        let other = ElementBuilder::new("SOMETHING-ELSE-ENTIRELY").build();
        prop_assert_eq!(eval_xquery(&q, &other), None);
    }

    /// `not(not(p))` evaluates like `p`.
    #[test]
    fn double_negation(pred in pred_strategy()) {
        let elem = ElementBuilder::new("POLICY")
            .child(ElementBuilder::new("STATEMENT").child(ElementBuilder::new("PURPOSE")))
            .build();
        let plain = XQuery {
            document: "d".into(),
            root: Step::named("POLICY").with_pred(pred.clone()),
            behavior: "b".into(),
        };
        let doubled = XQuery {
            document: "d".into(),
            root: Step::named("POLICY")
                .with_pred(Pred::Not(Box::new(Pred::Not(Box::new(pred))))),
            behavior: "b".into(),
        };
        prop_assert_eq!(eval_xquery(&plain, &elem), eval_xquery(&doubled, &elem));
    }

    /// And is commutative; Or is commutative.
    #[test]
    fn boolean_commutativity(a in pred_strategy(), b in pred_strategy()) {
        let elem = ElementBuilder::new("POLICY")
            .child(ElementBuilder::new("STATEMENT"))
            .build();
        let q = |p: Pred| XQuery {
            document: "d".into(),
            root: Step::named("POLICY").with_pred(p),
            behavior: "x".into(),
        };
        prop_assert_eq!(
            eval_xquery(&q(Pred::And(vec![a.clone(), b.clone()])), &elem),
            eval_xquery(&q(Pred::And(vec![b.clone(), a.clone()])), &elem)
        );
        prop_assert_eq!(
            eval_xquery(&q(Pred::Or(vec![a.clone(), b.clone()])), &elem),
            eval_xquery(&q(Pred::Or(vec![b, a])), &elem)
        );
    }

    /// Query size is positive and stable under display/parse.
    #[test]
    fn size_is_stable(q in query_strategy()) {
        prop_assert!(q.size() >= 1);
        let back = parse_xquery(&q.to_string()).unwrap();
        prop_assert_eq!(q.size(), back.size());
    }
}
