//! Parser for the textual XQuery form.
//!
//! The APPEL→XQuery translator emits *text* (the paper's pipeline hands
//! textual XQuery to XTABLE), so a parser is needed to get it back into
//! AST form for evaluation or SQL compilation.

use crate::ast::{Pred, Step, XQuery};
use crate::error::XQueryError;

/// Parse a complete query of the form
/// `if (document("name")/STEP[...]) then <behavior/> [else ()]`.
pub fn parse_xquery(text: &str) -> Result<XQuery, XQueryError> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    p.keyword("if")?;
    p.ws();
    p.token("(")?;
    p.ws();
    p.keyword("document")?;
    p.ws();
    p.token("(")?;
    p.ws();
    let document = p.string()?;
    p.ws();
    p.token(")")?;
    p.ws();
    p.token("/")?;
    let root = p.step()?;
    p.ws();
    p.token(")")?;
    p.ws();
    p.keyword("then")?;
    p.ws();
    // `return <b/>` is tolerated (paper Fig. 18 writes `then return`).
    let _ = p.keyword_opt("return");
    p.ws();
    p.token("<")?;
    let behavior = p.name()?;
    p.token("/")?;
    p.token(">")?;
    p.ws();
    if p.keyword_opt("else") {
        p.ws();
        p.token("(")?;
        p.ws();
        p.token(")")?;
        p.ws();
    }
    if p.pos < p.bytes.len() {
        return Err(p.err("unexpected trailing text"));
    }
    Ok(XQuery {
        document,
        root,
        behavior,
    })
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XQueryError {
        XQueryError::syntax(self.pos, message)
    }

    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn token(&mut self, tok: &str) -> Result<(), XQueryError> {
        if self.text[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), XQueryError> {
        if self.keyword_opt(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    /// Consume a keyword only when it is not a prefix of a longer name.
    fn keyword_opt(&mut self, kw: &str) -> bool {
        let rest = &self.text[self.pos..];
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.bytes().next();
            let boundary =
                !matches!(after, Some(b) if b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn string(&mut self) -> Result<String, XQueryError> {
        self.token("\"")?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = self.text[start..self.pos].to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn name(&mut self) -> Result<String, XQueryError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' || b == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    /// `NAME [pred]*` — multiple bracket groups AND together.
    fn step(&mut self) -> Result<Step, XQueryError> {
        let name = self.name()?;
        let mut preds = Vec::new();
        loop {
            self.ws();
            if self.text[self.pos..].starts_with('[') {
                self.pos += 1;
                let p = self.pred()?;
                self.ws();
                self.token("]")?;
                preds.push(p);
            } else {
                break;
            }
        }
        let mut step = Step::named(name);
        if !preds.is_empty() {
            step = step.with_pred(Pred::and(preds));
        }
        Ok(step)
    }

    fn pred(&mut self) -> Result<Pred, XQueryError> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<Pred, XQueryError> {
        let mut parts = vec![self.and_pred()?];
        loop {
            self.ws();
            if self.keyword_opt("or") {
                self.ws();
                parts.push(self.and_pred()?);
            } else {
                break;
            }
        }
        Ok(Pred::or(parts))
    }

    fn and_pred(&mut self) -> Result<Pred, XQueryError> {
        let mut parts = vec![self.unary_pred()?];
        loop {
            self.ws();
            if self.keyword_opt("and") {
                self.ws();
                parts.push(self.unary_pred()?);
            } else {
                break;
            }
        }
        Ok(Pred::and(parts))
    }

    fn unary_pred(&mut self) -> Result<Pred, XQueryError> {
        self.ws();
        if self.keyword_opt("not") {
            self.ws();
            self.token("(")?;
            let inner = self.pred()?;
            self.ws();
            self.token(")")?;
            return Ok(Pred::Not(Box::new(inner)));
        }
        if self.text[self.pos..].starts_with('(') {
            self.pos += 1;
            let inner = self.pred()?;
            self.ws();
            self.token(")")?;
            return Ok(inner);
        }
        if self.keyword_opt("only") {
            self.ws();
            self.token("(")?;
            let mut steps = vec![self.step()?];
            loop {
                self.ws();
                if self.text[self.pos..].starts_with(',') {
                    self.pos += 1;
                    self.ws();
                    steps.push(self.step()?);
                } else {
                    break;
                }
            }
            self.ws();
            self.token(")")?;
            return Ok(Pred::OnlyChildren(steps));
        }
        if self.text[self.pos..].starts_with('@') {
            self.pos += 1;
            let attr = self.name()?;
            self.ws();
            self.token("=")?;
            self.ws();
            let value = self.string()?;
            return Ok(Pred::AttrEq(attr, value));
        }
        // A relative existence path: NAME[pred]* (/ NAME[pred]*)*.
        let mut steps = vec![self.step()?];
        loop {
            if self.text[self.pos..].starts_with('/') {
                self.pos += 1;
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(Pred::Exists(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_18() {
        let q = parse_xquery(
            "if (document(\"applicable-policy\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>",
        )
        .unwrap();
        assert_eq!(q.document, "applicable-policy");
        assert_eq!(q.behavior, "block");
        assert_eq!(q.root.name, "POLICY");
    }

    #[test]
    fn roundtrips_through_display() {
        let text = "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>";
        let q = parse_xquery(text).unwrap();
        assert_eq!(q.to_string(), text);
        // And the re-parse is identical.
        assert_eq!(parse_xquery(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn tolerates_then_return_form() {
        let q = parse_xquery("if (document(\"p\")/POLICY) then return <request/>").unwrap();
        assert_eq!(q.behavior, "request");
    }

    #[test]
    fn tolerates_else_empty() {
        let q = parse_xquery("if (document(\"p\")/POLICY) then <block/> else ()").unwrap();
        assert_eq!(q.behavior, "block");
    }

    #[test]
    fn parses_not_and_parens() {
        let q = parse_xquery(
            "if (document(\"p\")/POLICY[not(STATEMENT[RECIPIENT[unrelated]]) and (STATEMENT[PURPOSE[current]] or STATEMENT[PURPOSE[admin]])]) then <request/>",
        )
        .unwrap();
        let Pred::And(parts) = q.root.predicate.unwrap() else {
            panic!("expected And at top")
        };
        assert!(matches!(parts[0], Pred::Not(_)));
        assert!(matches!(parts[1], Pred::Or(_)));
    }

    #[test]
    fn parses_multi_step_paths() {
        let q = parse_xquery(
            "if (document(\"p\")/POLICY[STATEMENT/DATA-GROUP/DATA[@ref = \"#user.name\"]]) then <block/>",
        )
        .unwrap();
        let Pred::Exists(steps) = q.root.predicate.unwrap() else {
            panic!()
        };
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[2].name, "DATA");
    }

    #[test]
    fn multiple_bracket_groups_and_together() {
        let q =
            parse_xquery("if (document(\"p\")/POLICY[STATEMENT][ENTITY]) then <block/>").unwrap();
        assert!(matches!(q.root.predicate, Some(Pred::And(ref ps)) if ps.len() == 2));
    }

    #[test]
    fn keyword_boundary_respected() {
        // An element named `order` must not be parsed as keyword `or` + `der`.
        let q = parse_xquery("if (document(\"p\")/POLICY[order]) then <block/>").unwrap();
        assert!(matches!(
            q.root.predicate,
            Some(Pred::Exists(ref s)) if s[0].name == "order"
        ));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "if (document(p)/A) then <b/>",
            "if (document(\"p\")A) then <b/>",
            "if (document(\"p\")/A) then b",
            "if (document(\"p\")/A[]) then <b/>",
            "if (document(\"p\")/A) then <b/> trailing",
            "if (document(\"p\")/A[@x]) then <b/>",
        ] {
            assert!(parse_xquery(bad).is_err(), "should reject {bad:?}");
        }
    }
}
