//! The XQuery subset AST: the `if (document(...)/path) then <b/>` form
//! of the paper's Figure 18.

use std::fmt;

/// A complete query: test a path against a named document; when the
/// path selects at least one node, return the behavior element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XQuery {
    /// The `document("...")` argument.
    pub document: String,
    /// The root step (applied to the document's root element).
    pub root: Step,
    /// Name of the element returned by the `then` branch, e.g. `block`.
    pub behavior: String,
}

/// One XPath step: an element name test plus an optional predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    pub name: String,
    pub predicate: Option<Pred>,
}

impl Step {
    /// A step with no predicate.
    pub fn named(name: impl Into<String>) -> Step {
        Step {
            name: name.into(),
            predicate: None,
        }
    }

    /// Attach a predicate.
    pub fn with_pred(mut self, pred: Pred) -> Step {
        self.predicate = Some(pred);
        self
    }

    /// Number of predicate nodes in this step's subtree (the XTABLE
    /// complexity measure).
    pub fn size(&self) -> usize {
        1 + self.predicate.as_ref().map_or(0, Pred::size)
    }
}

/// A predicate inside `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation: `not(...)`.
    Not(Box<Pred>),
    /// Existence of a child path: `STATEMENT[...]` or `A/B[...]`.
    Exists(Vec<Step>),
    /// Attribute comparison: `@required = "always"`.
    AttrEq(String, String),
    /// Exactness: every child element of the context node matches one
    /// of the listed steps. This is the `*-exact` APPEL connective —
    /// XPath 1.0 writes it `not(*[not(self::a | self::b)])`; this AST
    /// keeps it first-class as `only(a, b)`. The XTABLE compiler cannot
    /// translate it (see `p3p-server::xtable`), reproducing the paper's
    /// Medium-preference failure.
    OnlyChildren(Vec<Step>),
}

impl Pred {
    /// Number of nodes in the predicate tree.
    pub fn size(&self) -> usize {
        match self {
            Pred::And(ps) | Pred::Or(ps) => 1 + ps.iter().map(Pred::size).sum::<usize>(),
            Pred::Not(p) => 1 + p.size(),
            Pred::Exists(steps) => steps.iter().map(Step::size).sum(),
            Pred::AttrEq(_, _) => 1,
            Pred::OnlyChildren(steps) => 1 + steps.iter().map(Step::size).sum::<usize>(),
        }
    }

    /// Smart conjunction: flattens singletons.
    pub fn and(mut preds: Vec<Pred>) -> Pred {
        if preds.len() == 1 {
            preds.remove(0)
        } else {
            Pred::And(preds)
        }
    }

    /// Smart disjunction: flattens singletons.
    pub fn or(mut preds: Vec<Pred>) -> Pred {
        if preds.len() == 1 {
            preds.remove(0)
        } else {
            Pred::Or(preds)
        }
    }
}

impl XQuery {
    /// Total size: steps + predicates (used for the XTABLE limit).
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

// --- textual form -------------------------------------------------------

impl fmt::Display for XQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "if (document(\"{}\")/{}) then <{}/>",
            self.document, self.root, self.behavior
        )
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if let Some(p) = &self.predicate {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::And(ps) => write_joined(f, ps, " and "),
            Pred::Or(ps) => write_joined(f, ps, " or "),
            Pred::Not(p) => write!(f, "not({p})"),
            Pred::Exists(steps) => {
                for (i, s) in steps.iter().enumerate() {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Pred::AttrEq(name, value) => write!(f, "@{name} = \"{value}\""),
            Pred::OnlyChildren(steps) => {
                f.write_str("only(")?;
                for (i, s) in steps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{s}")?;
                }
                f.write_str(")")
            }
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, ps: &[Pred], sep: &str) -> fmt::Result {
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        // Parenthesize nested boolean combinations for unambiguity.
        match p {
            Pred::And(_) | Pred::Or(_) => write!(f, "({p})")?,
            _ => write!(f, "{p}")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_18() -> XQuery {
        // if (document("applicable-policy")/POLICY[STATEMENT[PURPOSE[
        //    admin or contact[@required = "always"]]]]) then <block/>
        let purpose_pred = Pred::Or(vec![
            Pred::Exists(vec![Step::named("admin")]),
            Pred::Exists(vec![
                Step::named("contact").with_pred(Pred::AttrEq("required".into(), "always".into()))
            ]),
        ]);
        XQuery {
            document: "applicable-policy".into(),
            root: Step::named("POLICY")
                .with_pred(Pred::Exists(vec![Step::named("STATEMENT").with_pred(
                    Pred::Exists(vec![Step::named("PURPOSE").with_pred(purpose_pred)]),
                )])),
            behavior: "block".into(),
        }
    }

    #[test]
    fn display_matches_figure_18_shape() {
        let q = figure_18();
        assert_eq!(
            q.to_string(),
            "if (document(\"applicable-policy\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>"
        );
    }

    #[test]
    fn size_counts_steps_and_predicates() {
        assert_eq!(Step::named("POLICY").size(), 1);
        let q = figure_18();
        // POLICY, STATEMENT, PURPOSE steps + or-node + admin step +
        // contact step + attr-eq.
        assert_eq!(q.size(), 7);
    }

    #[test]
    fn smart_constructors_flatten_singletons() {
        let single = Pred::and(vec![Pred::AttrEq("a".into(), "b".into())]);
        assert!(matches!(single, Pred::AttrEq(_, _)));
        let multi = Pred::or(vec![
            Pred::AttrEq("a".into(), "b".into()),
            Pred::AttrEq("c".into(), "d".into()),
        ]);
        assert!(matches!(multi, Pred::Or(_)));
    }

    #[test]
    fn nested_boolean_display_is_parenthesized() {
        let p = Pred::And(vec![
            Pred::Or(vec![
                Pred::Exists(vec![Step::named("a")]),
                Pred::Exists(vec![Step::named("b")]),
            ]),
            Pred::Exists(vec![Step::named("c")]),
        ]);
        assert_eq!(p.to_string(), "(a or b) and c");
    }

    #[test]
    fn multi_step_exists_displays_with_slash() {
        let p = Pred::Exists(vec![Step::named("DATA-GROUP"), Step::named("DATA")]);
        assert_eq!(p.to_string(), "DATA-GROUP/DATA");
    }

    #[test]
    fn not_displays() {
        let p = Pred::Not(Box::new(Pred::Exists(vec![Step::named("unrelated")])));
        assert_eq!(p.to_string(), "not(unrelated)");
    }
}
