//! Direct evaluation of the XQuery subset over XML documents.
//!
//! This realizes the paper's third architectural variation — policies in
//! a native XML store, queried without a relational detour (§4,
//! variation 3) — which the paper could not benchmark because no
//! public-domain XML store was available (§6.1).

use crate::ast::{Pred, Step, XQuery};
use p3p_xmldom::Element;

/// Evaluate a query against the root element of the applicable policy
/// document. Returns the behavior name when the path selects at least
/// one node, `None` otherwise.
pub fn eval_xquery(query: &XQuery, policy_root: &Element) -> Option<String> {
    if step_matches(&query.root, policy_root) {
        Some(query.behavior.clone())
    } else {
        None
    }
}

/// Does `step` match `elem` (name test + predicate)?
fn step_matches(step: &Step, elem: &Element) -> bool {
    if step.name != "*" && elem.name.local != step.name {
        return false;
    }
    match &step.predicate {
        None => true,
        Some(p) => pred_holds(p, elem),
    }
}

/// Evaluate a predicate with `elem` as the context node.
fn pred_holds(pred: &Pred, elem: &Element) -> bool {
    match pred {
        Pred::And(ps) => ps.iter().all(|p| pred_holds(p, elem)),
        Pred::Or(ps) => ps.iter().any(|p| pred_holds(p, elem)),
        Pred::Not(p) => !pred_holds(p, elem),
        Pred::AttrEq(name, value) => elem.attr_local(name) == Some(value.as_str()),
        Pred::Exists(steps) => exists_path(steps, elem),
        Pred::OnlyChildren(steps) => elem
            .child_elements()
            .all(|c| steps.iter().any(|s| step_matches(s, c))),
    }
}

/// Does a relative path select at least one node from `context`?
fn exists_path(steps: &[Step], context: &Element) -> bool {
    let Some((first, rest)) = steps.split_first() else {
        return true;
    };
    context
        .child_elements()
        .any(|child| step_matches(first, child) && exists_path(rest, child))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xquery;
    use p3p_xmldom::parse_element;

    fn volga_like() -> Element {
        parse_element(
            r#"<POLICY name="volga">
                 <STATEMENT>
                   <PURPOSE><current/></PURPOSE>
                   <RECIPIENT><ours/><same/></RECIPIENT>
                 </STATEMENT>
                 <STATEMENT>
                   <PURPOSE>
                     <individual-decision required="opt-in"/>
                     <contact required="opt-in"/>
                   </PURPOSE>
                   <RECIPIENT><ours/></RECIPIENT>
                 </STATEMENT>
               </POLICY>"#,
        )
        .unwrap()
    }

    fn run(q: &str, policy: &Element) -> Option<String> {
        eval_xquery(&parse_xquery(q).unwrap(), policy)
    }

    #[test]
    fn figure_18_against_conforming_policy() {
        // Volga has no admin purpose and contact is opt-in, so the
        // block query selects nothing.
        let policy = volga_like();
        let out = run(
            "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>",
            &policy,
        );
        assert_eq!(out, None);
    }

    #[test]
    fn figure_18_fires_on_always_contact() {
        let policy = parse_element(
            "<POLICY><STATEMENT><PURPOSE><contact required=\"always\"/></PURPOSE></STATEMENT></POLICY>",
        )
        .unwrap();
        let out = run(
            "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[admin or contact[@required = \"always\"]]]]) then <block/>",
            &policy,
        );
        assert_eq!(out, Some("block".to_string()));
    }

    #[test]
    fn root_name_must_match() {
        let policy = volga_like();
        assert_eq!(
            run("if (document(\"p\")/RULESET) then <block/>", &policy),
            None
        );
        assert_eq!(
            run("if (document(\"p\")/POLICY) then <request/>", &policy),
            Some("request".to_string())
        );
    }

    #[test]
    fn multi_step_paths() {
        let policy = parse_element(
            "<POLICY><STATEMENT><DATA-GROUP><DATA ref=\"#user.name\"/></DATA-GROUP></STATEMENT></POLICY>",
        )
        .unwrap();
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[STATEMENT/DATA-GROUP/DATA[@ref = \"#user.name\"]]) then <block/>",
                &policy
            ),
            Some("block".to_string())
        );
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[STATEMENT/DATA-GROUP/DATA[@ref = \"#user.bdate\"]]) then <block/>",
                &policy
            ),
            None
        );
    }

    #[test]
    fn not_negates() {
        let policy = volga_like();
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[not(STATEMENT[RECIPIENT[unrelated]])]) then <request/>",
                &policy
            ),
            Some("request".to_string())
        );
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[not(STATEMENT[RECIPIENT[ours]])]) then <request/>",
                &policy
            ),
            None
        );
    }

    #[test]
    fn and_or_combinations() {
        let policy = volga_like();
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[current] and RECIPIENT[same]]]) then <request/>",
                &policy
            ),
            Some("request".to_string())
        );
        // current and same are in the same statement; contact is in the
        // other — a single STATEMENT step must not mix them.
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[STATEMENT[PURPOSE[contact] and RECIPIENT[same]]]) then <request/>",
                &policy
            ),
            None
        );
    }

    #[test]
    fn attribute_comparison_requires_presence() {
        let policy = volga_like();
        // `ours` has no required attribute: @required = "always" is false.
        assert_eq!(
            run(
                "if (document(\"p\")/POLICY[STATEMENT[RECIPIENT[ours[@required = \"always\"]]]]) then <block/>",
                &policy
            ),
            None
        );
    }

    #[test]
    fn wildcard_step() {
        let policy = volga_like();
        let q = crate::ast::XQuery {
            document: "p".into(),
            root: crate::ast::Step::named("*"),
            behavior: "request".into(),
        };
        assert_eq!(eval_xquery(&q, &policy), Some("request".to_string()));
    }

    #[test]
    fn empty_exists_path_is_true() {
        // Degenerate but well-defined: an empty relative path selects
        // the context node itself.
        assert!(super::exists_path(&[], &volga_like()));
    }
}
