//! XQuery subsystem errors.

use std::fmt;

/// An error from parsing or compiling an XQuery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XQueryError {
    /// Syntax error in the query text.
    Syntax {
        /// Byte offset where the problem was found.
        offset: usize,
        message: String,
    },
    /// The query exceeds a processor's capability — the XTABLE
    /// compiler raises this for queries past its complexity limit,
    /// reproducing the paper's Medium-preference failure (§6.3.2).
    TooComplex {
        /// A measure of the query's size (predicate count).
        size: usize,
        /// The processor's limit.
        limit: usize,
    },
    /// A construct the downstream processor cannot handle.
    Unsupported(String),
}

impl XQueryError {
    pub(crate) fn syntax(offset: usize, message: impl Into<String>) -> XQueryError {
        XQueryError::Syntax {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XQueryError::Syntax { offset, message } => {
                write!(f, "XQuery syntax error at offset {offset}: {message}")
            }
            XQueryError::TooComplex { size, limit } => write!(
                f,
                "query too complex for the processor: size {size} exceeds limit {limit}"
            ),
            XQueryError::Unsupported(what) => write!(f, "unsupported XQuery construct: {what}"),
        }
    }
}

impl std::error::Error for XQueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(XQueryError::syntax(3, "expected `if`")
            .to_string()
            .contains("offset 3"));
        assert!(XQueryError::TooComplex {
            size: 40,
            limit: 32
        }
        .to_string()
        .contains("exceeds limit 32"));
        assert!(XQueryError::Unsupported("exact connective".into())
            .to_string()
            .contains("exact connective"));
    }
}
