//! # p3p-xquery — an XQuery/XPath subset
//!
//! The paper's second and third architectural variations (§4) express
//! APPEL preferences as XQuery instead of SQL: either against an XML
//! *view* of the shredded relational tables (via XTABLE/XPERANTO) or
//! against a native XML store. This crate provides the query-language
//! substrate:
//!
//! * [`ast`] — the `if (document("...")/PATH) then <behavior/>` query
//!   form of the paper's Figure 18, with XPath steps, nested existence
//!   predicates, attribute comparisons, and `and`/`or`/`not`;
//! * [`parse`] — a parser for the textual form (the APPEL→XQuery
//!   translator emits *text*, exactly as the paper's pipeline does, and
//!   the XTABLE stage re-parses it);
//! * [`eval`] — direct evaluation over [`p3p_xmldom`] documents: the
//!   "native XML store" variation the paper could not benchmark for
//!   lack of a public-domain XML store (§6.1).
//!
//! The XQuery→SQL compilation (the XTABLE role) lives in `p3p-server`,
//! next to the relational schemas it targets.
//!
//! ## Example
//!
//! ```
//! use p3p_xquery::{parse::parse_xquery, eval::eval_xquery};
//! use p3p_xmldom::parse_element;
//!
//! // Figure 18 of the paper, in this crate's concrete syntax.
//! let q = parse_xquery(r#"
//!   if (document("applicable-policy")/POLICY[STATEMENT[PURPOSE[
//!       admin or contact[@required = "always"]]]])
//!   then <block/>
//! "#).unwrap();
//!
//! let policy = parse_element(
//!   "<POLICY><STATEMENT><PURPOSE><admin/></PURPOSE></STATEMENT></POLICY>").unwrap();
//! assert_eq!(eval_xquery(&q, &policy), Some("block".to_string()));
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod parse;

pub use ast::{Pred, Step, XQuery};
pub use error::XQueryError;
pub use eval::eval_xquery;
pub use parse::parse_xquery;
