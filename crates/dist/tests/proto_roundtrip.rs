//! Wire-protocol property tests: encode∘decode is the identity for
//! every frame type over seeded random payloads, and hostile bytes
//! (truncation, corrupt lengths, wrong versions, unknown kinds) map to
//! typed errors — never panics, never bogus frames.

use p3p_appel::engine::Verdict;
use p3p_appel::model::Behavior;
use p3p_dist::proto::{
    engine_from_wire, engine_to_wire, Frame, WireError, HEADER_LEN, MAX_PAYLOAD, VERSION,
};
use p3p_server::EngineKind;
use p3p_workload::rng::SmallRng;

/// A seeded random string: ASCII and multi-byte UTF-8 mixed, because
/// string fields carry both policy names and raw XML.
fn gen_string(rng: &mut SmallRng, max_len: usize) -> String {
    let alphabet: Vec<char> = "abcXYZ019 <>/=\"éß語🜁\n".chars().collect();
    let len = rng.gen_index(max_len + 1);
    (0..len).map(|_| *rng.pick(&alphabet)).collect()
}

fn gen_verdict(rng: &mut SmallRng) -> Verdict {
    let behavior = match rng.gen_index(4) {
        0 => Behavior::Request,
        1 => Behavior::Block,
        2 => Behavior::Limited,
        _ => Behavior::Custom(gen_string(rng, 12)),
    };
    Verdict {
        behavior,
        fired_rule: if rng.gen_bool(0.5) {
            Some(rng.gen_index(1 << 20))
        } else {
            None
        },
    }
}

fn gen_engine(rng: &mut SmallRng) -> EngineKind {
    *rng.pick(EngineKind::ALL)
}

/// One random frame of each kind per seed, in a fixed rotation so a
/// failing seed pinpoints the frame type.
fn gen_frame(rng: &mut SmallRng, kind: usize) -> Frame {
    match kind % 10 {
        0 => Frame::Hello {
            worker: gen_string(rng, 40),
        },
        1 => Frame::Welcome {
            worker_id: rng.next_u64(),
            heartbeat_ms: rng.next_u64(),
        },
        2 => Frame::LoadCorpus {
            policies: (0..rng.gen_index(8))
                .map(|_| (gen_string(rng, 20), gen_string(rng, 200)))
                .collect(),
        },
        3 => Frame::CorpusReady {
            worker_id: rng.next_u64(),
            epoch: rng.next_u64(),
            policies: rng.next_u64(),
        },
        4 => Frame::BeginSweep {
            sweep_id: rng.next_u64(),
            engine: gen_engine(rng),
            ruleset_xml: gen_string(rng, 300),
        },
        5 => Frame::Job {
            sweep_id: rng.next_u64(),
            job_id: rng.next_u64(),
            names: (0..rng.gen_index(30))
                .map(|_| gen_string(rng, 24))
                .collect(),
        },
        6 => Frame::JobResult {
            job_id: rng.next_u64(),
            epoch: rng.next_u64(),
            elapsed_us: rng.next_u64(),
            verdicts: (0..rng.gen_index(30))
                .map(|_| (gen_string(rng, 24), gen_verdict(rng)))
                .collect(),
        },
        7 => Frame::Heartbeat {
            worker_id: rng.next_u64(),
            seq: rng.next_u64(),
        },
        8 => Frame::Shutdown,
        _ => Frame::Error {
            code: (rng.next_u64() & 0xffff) as u16,
            message: gen_string(rng, 60),
        },
    }
}

#[test]
fn encode_decode_is_identity_for_every_frame_type() {
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        for kind in 0..10 {
            let frame = gen_frame(&mut rng, kind);
            let bytes = frame.encode();
            let (decoded, consumed) = Frame::decode(&bytes)
                .unwrap_or_else(|e| panic!("seed {seed} kind {kind}: decode failed: {e}"));
            assert_eq!(
                consumed,
                bytes.len(),
                "seed {seed} kind {kind}: partial consume"
            );
            assert_eq!(
                decoded, frame,
                "seed {seed} kind {kind}: round-trip mismatch"
            );
        }
    }
}

#[test]
fn decode_consumes_one_frame_from_a_concatenated_stream() {
    let mut rng = SmallRng::seed_from_u64(7);
    let frames: Vec<Frame> = (0..10).map(|k| gen_frame(&mut rng, k)).collect();
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&f.encode());
    }
    let mut offset = 0;
    for expect in &frames {
        let (got, used) = Frame::decode(&stream[offset..]).expect("stream decode");
        assert_eq!(&got, expect);
        offset += used;
    }
    assert_eq!(offset, stream.len());
}

#[test]
fn every_truncation_point_is_a_typed_truncated_error() {
    let mut rng = SmallRng::seed_from_u64(11);
    for kind in 0..10 {
        let frame = gen_frame(&mut rng, kind);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(WireError::Truncated { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(
                        need > cut,
                        "need {need} must exceed the {cut} bytes present"
                    );
                }
                other => panic!(
                    "{} truncated at {cut}/{}: expected Truncated, got {other:?}",
                    frame.kind_name(),
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn bad_magic_bad_version_unknown_kind_are_typed_errors() {
    let good = Frame::Heartbeat {
        worker_id: 1,
        seq: 2,
    }
    .encode();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        Frame::decode(&bad_magic),
        Err(WireError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[2] = VERSION + 1;
    assert!(matches!(
        Frame::decode(&bad_version),
        Err(WireError::BadVersion { got, want }) if got == VERSION + 1 && want == VERSION
    ));

    let mut unknown_kind = good.clone();
    unknown_kind[3] = 0x7f;
    assert!(matches!(
        Frame::decode(&unknown_kind),
        Err(WireError::UnknownFrame(0x7f))
    ));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut bytes = Frame::Shutdown.encode();
    let huge = (MAX_PAYLOAD + 1).to_le_bytes();
    bytes[4..8].copy_from_slice(&huge);
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::Oversized { len, max }) if len == MAX_PAYLOAD + 1 && max == MAX_PAYLOAD
    ));
    // The streaming reader must reject it too, without trying to
    // allocate or read the claimed payload.
    let mut cursor = std::io::Cursor::new(bytes);
    assert!(matches!(
        Frame::read_from(&mut cursor),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn trailing_bytes_after_a_payload_are_malformed() {
    let mut bytes = Frame::Heartbeat {
        worker_id: 1,
        seq: 2,
    }
    .encode();
    // Grow the payload by one byte and fix up the declared length.
    bytes.push(0);
    let len = (bytes.len() - HEADER_LEN) as u32;
    bytes[4..8].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn corrupt_interior_lengths_never_panic() {
    // Flip every byte of every frame one at a time; decode must return
    // (any) Ok or a typed error, never panic or overrun.
    let mut rng = SmallRng::seed_from_u64(23);
    for kind in 0..10 {
        let frame = gen_frame(&mut rng, kind);
        let clean = frame.encode();
        for i in 0..clean.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = clean.clone();
                corrupt[i] ^= flip;
                let _ = Frame::decode(&corrupt);
            }
        }
    }
}

#[test]
fn invalid_utf8_in_a_string_field_is_malformed() {
    let mut bytes = Frame::Hello {
        worker: "abcd".into(),
    }
    .encode();
    let idx = bytes.len() - 1;
    bytes[idx] = 0xff;
    assert!(matches!(
        Frame::decode(&bytes),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn engine_wire_codes_are_stable_and_total() {
    for &engine in EngineKind::ALL {
        let byte = engine_to_wire(engine);
        assert_eq!(engine_from_wire(byte), Some(engine));
    }
    assert_eq!(engine_from_wire(200), None);
    // The numbering is part of the protocol: a renumbering would let
    // mixed-version fleets silently match with the wrong engine.
    assert_eq!(engine_to_wire(EngineKind::Native), 0);
    assert_eq!(engine_to_wire(EngineKind::Sql), 1);
    assert_eq!(engine_to_wire(EngineKind::SqlGeneric), 2);
    assert_eq!(engine_to_wire(EngineKind::XQueryXTable), 3);
    assert_eq!(engine_to_wire(EngineKind::XQueryNative), 4);
}

#[test]
fn read_write_round_trips_over_a_real_stream() {
    let mut rng = SmallRng::seed_from_u64(31);
    let frames: Vec<Frame> = (0..10).map(|k| gen_frame(&mut rng, k)).collect();
    let mut buf = Vec::new();
    for f in &frames {
        f.write_to(&mut buf).expect("write");
    }
    let mut cursor = std::io::Cursor::new(buf);
    for expect in &frames {
        let got = Frame::read_from(&mut cursor).expect("read");
        assert_eq!(&got, expect);
    }
    // The stream is exhausted: the next read is a clean EOF error.
    assert!(matches!(
        Frame::read_from(&mut cursor),
        Err(WireError::Io(_))
    ));
}
