//! Multi-process fault drills: a worker killed mid-sweep must not
//! change the fold. The scheduler spawns real `p3p-worker` processes
//! (via `CARGO_BIN_EXE_p3p-worker`), SIGKILLs one while it has a job
//! in flight, and the folded verdict map must still be identical to a
//! single-process `match_corpus` — with the stranded shard visibly
//! re-queued.

use p3p_dist::proto::Frame;
use p3p_dist::{corpus_server, SchedConfig, Scheduler};
use p3p_server::EngineKind;
use p3p_telemetry::metrics;
use p3p_workload::Sensitivity;
use std::process::{Child, Command, Stdio};

const SEED: u64 = 42;
const POLICIES: usize = 300;

fn spawn_worker(addr: &str, name: &str, delay_ms: u64) -> Child {
    Command::new(env!("CARGO_BIN_EXE_p3p-worker"))
        .arg("--connect")
        .arg(addr)
        .arg("--name")
        .arg(name)
        .arg("--delay-ms")
        .arg(delay_ms.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn p3p-worker")
}

#[test]
fn killed_worker_does_not_change_the_fold() {
    let engine = EngineKind::Sql;
    let ruleset = Sensitivity::High.ruleset();

    // The ground truth: one process, one server, one bulk sweep.
    let local = corpus_server(SEED, POLICIES).expect("local corpus");
    let expected = local.match_corpus(&ruleset, engine).expect("local sweep");

    let server = corpus_server(SEED, POLICIES).expect("sched corpus");
    let mut sched = Scheduler::bind("127.0.0.1:0", server, SchedConfig::default()).expect("bind");
    let addr = sched.local_addr().to_string();

    // Four real worker processes. The per-job delay keeps each job in
    // flight long enough that the kill below always strands one.
    let mut children: Vec<Child> = (0..4)
        .map(|i| spawn_worker(&addr, &format!("w{i}"), 150))
        .collect();
    sched.accept_workers(4).expect("fleet bootstrap");

    // Map worker ids back to the children we spawned (accept order is
    // arbitrary, names are not).
    let names = sched.worker_names();
    let child_of = |worker_id: u64| -> usize {
        let name = &names.iter().find(|(id, _)| *id == worker_id).unwrap().1;
        name.strip_prefix('w').unwrap().parse::<usize>().unwrap()
    };

    let before_requeues = metrics::counter("p3p_dist_jobs_requeued_total").get();

    // Kill the first worker to complete a shard — the observer fires
    // after its next job was dispatched, so the SIGKILL is guaranteed
    // to strand an in-flight shard.
    let mut killed: Option<u64> = None;
    let report = {
        let children = &mut children;
        sched
            .sweep_observed(&ruleset, engine, 8, &mut |_shard, worker| {
                if killed.is_none() {
                    children[child_of(worker)].kill().expect("sigkill worker");
                    killed = Some(worker);
                }
            })
            .expect("distributed sweep")
    };
    let killed = killed.expect("a worker completed at least one shard");

    // The fold is exactly the single-process answer: same names, same
    // behaviors, same fired-rule indices, same order.
    assert_eq!(report.verdicts, expected);

    // The kill was observed: the stranded shard was re-queued, both in
    // the sweep stats and the process-wide metric.
    assert!(
        report.stats.requeued > 0,
        "killing worker {killed} mid-sweep must requeue its in-flight shard"
    );
    let after_requeues = metrics::counter("p3p_dist_jobs_requeued_total").get();
    assert!(
        after_requeues > before_requeues,
        "p3p_dist_jobs_requeued_total must count the stranded shard"
    );

    // Every shard was answered despite the dead worker.
    assert_eq!(
        report.stats.completed_remote + report.stats.completed_local,
        (POLICIES as u64).div_ceil(8)
    );

    sched.shutdown();
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[test]
fn full_fleet_fold_matches_single_process_sweep() {
    let engine = EngineKind::SqlGeneric;
    let ruleset = Sensitivity::Medium.ruleset();

    let local = corpus_server(SEED, 120).expect("local corpus");
    let expected = local.match_corpus(&ruleset, engine).expect("local sweep");

    let server = corpus_server(SEED, 120).expect("sched corpus");
    let mut sched = Scheduler::bind("127.0.0.1:0", server, SchedConfig::default()).expect("bind");
    let addr = sched.local_addr().to_string();
    let children: Vec<Child> = (0..2)
        .map(|i| spawn_worker(&addr, &format!("f{i}"), 0))
        .collect();
    sched.accept_workers(2).expect("fleet bootstrap");

    let report = sched.sweep(&ruleset, engine, 16).expect("sweep");
    assert_eq!(report.verdicts, expected);
    assert_eq!(
        report.stats.completed_local, 0,
        "healthy fleet needs no fallback"
    );
    assert_eq!(report.stats.requeued, 0);
    assert_eq!(report.epoch, sched.catalog_epoch());

    sched.shutdown();
    for mut child in children {
        let _ = child.wait();
    }
}

/// A worker that handshakes correctly and then goes silent — no
/// heartbeats, no results — exercises the reaper's slow death path:
/// heartbeat misses accumulate, the worker is declared dead, and its
/// shard falls back to the scheduler's local engine.
#[test]
fn silent_worker_is_reaped_and_sweep_completes_locally() {
    let engine = EngineKind::Native;
    let ruleset = Sensitivity::Low.ruleset();

    let local = corpus_server(SEED, 60).expect("local corpus");
    let expected = local.match_corpus(&ruleset, engine).expect("local sweep");

    let server = corpus_server(SEED, 60).expect("sched corpus");
    let config = SchedConfig {
        heartbeat_ms: 50,
        miss_threshold: 3,
        ..SchedConfig::default()
    };
    let mut sched = Scheduler::bind("127.0.0.1:0", server, config).expect("bind");
    let addr = sched.local_addr();

    let before_misses = metrics::counter("p3p_dist_heartbeat_misses_total").get();

    // Hand-rolled zombie: speaks the bootstrap protocol, then hangs.
    let zombie = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        Frame::Hello {
            worker: "zombie".into(),
        }
        .write_to(&mut stream)
        .expect("hello");
        let Frame::Welcome { worker_id, .. } = Frame::read_from(&mut stream).expect("welcome")
        else {
            panic!("expected welcome");
        };
        let Frame::LoadCorpus { policies } = Frame::read_from(&mut stream).expect("corpus") else {
            panic!("expected load_corpus");
        };
        // Claim readiness at the epoch a real install would reach
        // (one bump per install), then never answer anything again.
        Frame::CorpusReady {
            worker_id,
            epoch: policies.len() as u64,
            policies: policies.len() as u64,
        }
        .write_to(&mut stream)
        .expect("ready");
        // Hold the socket open (no EOF) until the scheduler is done.
        loop {
            match Frame::read_from(&mut stream) {
                Ok(Frame::Shutdown) | Err(_) => break,
                Ok(_) => continue,
            }
        }
    });

    sched.accept_workers(1).expect("bootstrap");
    let report = sched.sweep(&ruleset, engine, 30).expect("sweep");

    // The zombie took jobs it never answered; the reaper declared it
    // dead on missed heartbeats and the local fallback finished.
    assert_eq!(report.verdicts, expected);
    assert!(report.stats.completed_local > 0);
    assert!(report.stats.requeued > 0);
    let after_misses = metrics::counter("p3p_dist_heartbeat_misses_total").get();
    assert!(
        after_misses - before_misses >= 3,
        "reaping a silent worker must charge at least miss_threshold misses"
    );

    sched.shutdown();
    let _ = zombie.join();
}
