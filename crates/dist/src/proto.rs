//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame starts with a fixed 8-byte header:
//!
//! ```text
//! offset  size  field
//! 0       2     magic   0x5033 ("P3", little-endian)
//! 2       1     version protocol version (currently 1)
//! 3       1     kind    frame discriminant (see [`Frame::kind`])
//! 4       4     len     payload length in bytes (little-endian)
//! ```
//!
//! followed by `len` payload bytes. Integers are little-endian;
//! strings are a `u32` byte length followed by UTF-8 bytes; lists are
//! a `u32` element count followed by the elements. A payload longer
//! than [`MAX_PAYLOAD`] is rejected before any allocation happens, so
//! a hostile or corrupt length prefix cannot balloon memory.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`WireError`], and [`Frame::decode`] distinguishes "incomplete,
//! feed me more bytes" ([`WireError::Truncated`]) from "corrupt,
//! close the connection" (everything else).

use p3p_appel::engine::Verdict;
use p3p_appel::model::Behavior;
use p3p_server::EngineKind;
use std::io::{Read, Write};

/// `"P3"` little-endian.
pub const MAGIC: u16 = 0x5033;
/// Current protocol version. A frame with any other version is
/// answered with [`WireError::BadVersion`], never silently accepted.
pub const VERSION: u8 = 1;
/// Fixed header size (magic + version + kind + payload length).
pub const HEADER_LEN: usize = 8;
/// Hard payload ceiling: large enough for a serialized multi-thousand
/// policy corpus, small enough that a corrupt length prefix cannot
/// exhaust memory.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Typed decode/IO failures. Every path through the decoder returns
/// one of these — nothing panics on hostile bytes.
#[derive(Debug)]
pub enum WireError {
    /// The buffer ends before the frame does; read more and retry.
    Truncated { have: usize, need: usize },
    /// The first two bytes are not [`MAGIC`].
    BadMagic(u16),
    /// Version byte mismatch.
    BadVersion { got: u8, want: u8 },
    /// Unknown frame discriminant.
    UnknownFrame(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized { len: u32, max: u32 },
    /// Structurally invalid payload (bad UTF-8, trailing bytes,
    /// unknown engine, …).
    Malformed(String),
    /// Socket-level failure while reading or writing a frame.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x} (want {MAGIC:#06x})"),
            WireError::BadVersion { got, want } => {
                write!(f, "protocol version {got} not supported (want {want})")
            }
            WireError::UnknownFrame(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte ceiling")
            }
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// One protocol frame. The scheduler→worker direction carries
/// `Welcome`/`LoadCorpus`/`BeginSweep`/`Job`/`Shutdown`; the
/// worker→scheduler direction carries
/// `Hello`/`CorpusReady`/`JobResult`/`Heartbeat`; `Error` flows both
/// ways.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// First frame on a fresh connection: the worker introduces itself.
    Hello { worker: String },
    /// Scheduler's reply: the assigned worker id and the heartbeat
    /// cadence the reaper will hold the worker to.
    Welcome { worker_id: u64, heartbeat_ms: u64 },
    /// Bootstrap: the serialized policy corpus, `(name, raw XML)` in
    /// name order. The worker installs every policy and answers with
    /// `CorpusReady`.
    LoadCorpus { policies: Vec<(String, String)> },
    /// The worker finished installing the corpus; `epoch` is the
    /// catalog epoch its server landed on (identical corpora installed
    /// in identical order land on identical epochs).
    CorpusReady {
        worker_id: u64,
        epoch: u64,
        policies: u64,
    },
    /// Announce a sweep: the preference to match and the engine to
    /// match it with. Workers pin one catalog snapshot for the whole
    /// sweep on receipt.
    BeginSweep {
        sweep_id: u64,
        engine: EngineKind,
        ruleset_xml: String,
    },
    /// One shard of the corpus to decide: a contiguous run of policy
    /// names from the scheduler's sorted roster.
    Job {
        sweep_id: u64,
        job_id: u64,
        names: Vec<String>,
    },
    /// A decided shard: per-policy verdicts in roster order, the epoch
    /// the worker's pinned snapshot reported, and the shard's
    /// wall-clock matching time.
    JobResult {
        job_id: u64,
        epoch: u64,
        elapsed_us: u64,
        verdicts: Vec<(String, Verdict)>,
    },
    /// Liveness beacon, sent on its own thread so a worker busy
    /// matching still beats.
    Heartbeat { worker_id: u64, seq: u64 },
    /// Graceful drain: finish the current job, then close.
    Shutdown,
    /// Typed failure report (either direction).
    Error { code: u16, message: String },
}

impl Frame {
    /// The frame discriminant byte.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Welcome { .. } => 0x02,
            Frame::LoadCorpus { .. } => 0x03,
            Frame::CorpusReady { .. } => 0x04,
            Frame::BeginSweep { .. } => 0x05,
            Frame::Job { .. } => 0x06,
            Frame::JobResult { .. } => 0x07,
            Frame::Heartbeat { .. } => 0x08,
            Frame::Shutdown => 0x09,
            Frame::Error { .. } => 0x0a,
        }
    }

    /// Human label for logs and errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Welcome { .. } => "welcome",
            Frame::LoadCorpus { .. } => "load_corpus",
            Frame::CorpusReady { .. } => "corpus_ready",
            Frame::BeginSweep { .. } => "begin_sweep",
            Frame::Job { .. } => "job",
            Frame::JobResult { .. } => "job_result",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::Shutdown => "shutdown",
            Frame::Error { .. } => "error",
        }
    }

    /// Serialize header + payload into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Frame::Hello { worker } => put_str(&mut payload, worker),
            Frame::Welcome {
                worker_id,
                heartbeat_ms,
            } => {
                put_u64(&mut payload, *worker_id);
                put_u64(&mut payload, *heartbeat_ms);
            }
            Frame::LoadCorpus { policies } => {
                put_u32(&mut payload, policies.len() as u32);
                for (name, xml) in policies {
                    put_str(&mut payload, name);
                    put_str(&mut payload, xml);
                }
            }
            Frame::CorpusReady {
                worker_id,
                epoch,
                policies,
            } => {
                put_u64(&mut payload, *worker_id);
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *policies);
            }
            Frame::BeginSweep {
                sweep_id,
                engine,
                ruleset_xml,
            } => {
                put_u64(&mut payload, *sweep_id);
                payload.push(engine_to_wire(*engine));
                put_str(&mut payload, ruleset_xml);
            }
            Frame::Job {
                sweep_id,
                job_id,
                names,
            } => {
                put_u64(&mut payload, *sweep_id);
                put_u64(&mut payload, *job_id);
                put_u32(&mut payload, names.len() as u32);
                for name in names {
                    put_str(&mut payload, name);
                }
            }
            Frame::JobResult {
                job_id,
                epoch,
                elapsed_us,
                verdicts,
            } => {
                put_u64(&mut payload, *job_id);
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *elapsed_us);
                put_u32(&mut payload, verdicts.len() as u32);
                for (name, verdict) in verdicts {
                    put_str(&mut payload, name);
                    put_str(&mut payload, verdict.behavior.as_str());
                    // fired_rule: -1 encodes "no rule fired".
                    put_u64(
                        &mut payload,
                        verdict.fired_rule.map_or(u64::MAX, |r| r as u64),
                    );
                }
            }
            Frame::Heartbeat { worker_id, seq } => {
                put_u64(&mut payload, *worker_id);
                put_u64(&mut payload, *seq);
            }
            Frame::Shutdown => {}
            Frame::Error { code, message } => {
                put_u16(&mut payload, *code);
                put_str(&mut payload, message);
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        put_u16(&mut out, MAGIC);
        out.push(VERSION);
        out.push(self.kind());
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one frame from the front of `buf`. Returns the frame and
    /// the number of bytes consumed; [`WireError::Truncated`] means the
    /// buffer holds only a prefix of the frame (read more and retry).
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: HEADER_LEN,
            });
        }
        let magic = u16::from_le_bytes([buf[0], buf[1]]);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if buf[2] != VERSION {
            return Err(WireError::BadVersion {
                got: buf[2],
                want: VERSION,
            });
        }
        let kind = buf[3];
        let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: total,
            });
        }
        let frame = decode_payload(kind, &buf[HEADER_LEN..total])?;
        Ok((frame, total))
    }

    /// Read exactly one frame from a stream (header first, then the
    /// validated payload — an oversized length is rejected before any
    /// allocation).
    pub fn read_from(r: &mut impl Read) -> Result<Frame, WireError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let magic = u16::from_le_bytes([header[0], header[1]]);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if header[2] != VERSION {
            return Err(WireError::BadVersion {
                got: header[2],
                want: VERSION,
            });
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        decode_payload(header[3], &payload)
    }

    /// Write the frame and flush.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }
}

/// `EngineKind` ↔ wire byte. The numbering is part of the protocol;
/// extend, never reorder.
pub fn engine_to_wire(engine: EngineKind) -> u8 {
    match engine {
        EngineKind::Native => 0,
        EngineKind::Sql => 1,
        EngineKind::SqlGeneric => 2,
        EngineKind::XQueryXTable => 3,
        EngineKind::XQueryNative => 4,
    }
}

/// Inverse of [`engine_to_wire`].
pub fn engine_from_wire(byte: u8) -> Option<EngineKind> {
    match byte {
        0 => Some(EngineKind::Native),
        1 => Some(EngineKind::Sql),
        2 => Some(EngineKind::SqlGeneric),
        3 => Some(EngineKind::XQueryXTable),
        4 => Some(EngineKind::XQueryNative),
        _ => None,
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(payload);
    let frame = match kind {
        0x01 => Frame::Hello { worker: c.str_()? },
        0x02 => Frame::Welcome {
            worker_id: c.u64_()?,
            heartbeat_ms: c.u64_()?,
        },
        0x03 => {
            let n = c.u32_()? as usize;
            let mut policies = Vec::new();
            for _ in 0..n {
                let name = c.str_()?;
                let xml = c.str_()?;
                policies.push((name, xml));
            }
            Frame::LoadCorpus { policies }
        }
        0x04 => Frame::CorpusReady {
            worker_id: c.u64_()?,
            epoch: c.u64_()?,
            policies: c.u64_()?,
        },
        0x05 => {
            let sweep_id = c.u64_()?;
            let engine_byte = c.u8_()?;
            let engine = engine_from_wire(engine_byte)
                .ok_or_else(|| WireError::Malformed(format!("unknown engine {engine_byte}")))?;
            Frame::BeginSweep {
                sweep_id,
                engine,
                ruleset_xml: c.str_()?,
            }
        }
        0x06 => {
            let sweep_id = c.u64_()?;
            let job_id = c.u64_()?;
            let n = c.u32_()? as usize;
            let mut names = Vec::new();
            for _ in 0..n {
                names.push(c.str_()?);
            }
            Frame::Job {
                sweep_id,
                job_id,
                names,
            }
        }
        0x07 => {
            let job_id = c.u64_()?;
            let epoch = c.u64_()?;
            let elapsed_us = c.u64_()?;
            let n = c.u32_()? as usize;
            let mut verdicts = Vec::new();
            for _ in 0..n {
                let name = c.str_()?;
                let behavior = Behavior::from_token(&c.str_()?);
                let fired = c.u64_()?;
                verdicts.push((
                    name,
                    Verdict {
                        behavior,
                        fired_rule: if fired == u64::MAX {
                            None
                        } else {
                            Some(fired as usize)
                        },
                    },
                ));
            }
            Frame::JobResult {
                job_id,
                epoch,
                elapsed_us,
                verdicts,
            }
        }
        0x08 => Frame::Heartbeat {
            worker_id: c.u64_()?,
            seq: c.u64_()?,
        },
        0x09 => Frame::Shutdown,
        0x0a => Frame::Error {
            code: c.u16_()?,
            message: c.str_()?,
        },
        other => return Err(WireError::UnknownFrame(other)),
    };
    if c.pos != payload.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after a {} frame",
            payload.len() - c.pos,
            frame.kind_name()
        )));
    }
    Ok(frame)
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader: every shortage is a typed
/// [`WireError::Truncated`], never a slice panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated {
            have: self.buf.len(),
            need: usize::MAX,
        })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                have: self.buf.len(),
                need: end,
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8_(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16_(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str_(&mut self) -> Result<String, WireError> {
        let len = self.u32_()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("invalid UTF-8 in string: {e}")))
    }
}
