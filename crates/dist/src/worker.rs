//! The match worker: connects to a scheduler, rebuilds the policy
//! catalog from the `LoadCorpus` bootstrap payload, and answers shard
//! jobs until told to drain.
//!
//! Liveness and work are separated: a dedicated heartbeat thread beats
//! every `heartbeat_ms` (the cadence the scheduler's `Welcome` frame
//! dictates) over a mutex-shared write half, so a worker deep in a
//! multi-second corpus install or a large shard still proves it is
//! alive. Each `BeginSweep` pins one catalog snapshot via
//! [`MatchPool::pin`], and every job of that sweep is matched against
//! the pinned `Arc` — the same one-epoch-per-sweep guarantee the
//! in-process pool gives, stretched across processes.

use crate::proto::{Frame, WireError};
use crate::DistError;
use p3p_appel::model::Ruleset;
use p3p_server::concurrent::{MatchPool, SharedServer};
use p3p_server::{EngineKind, PolicyServer};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker knobs (mostly for tests and fault drills).
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Display name sent in `Hello`.
    pub name: String,
    /// Artificial delay added before each `JobResult` is sent — fault
    /// drills use it to guarantee a job is still in flight when the
    /// worker is killed.
    pub delay_ms: u64,
}

/// Connect to `addr` and serve until the scheduler sends `Shutdown` or
/// the connection closes. Returns the number of jobs answered.
pub fn run(addr: &str, config: &WorkerConfig) -> Result<u64, DistError> {
    let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    stream.set_nodelay(true).map_err(WireError::Io)?;
    let writer = Arc::new(Mutex::new(stream.try_clone().map_err(WireError::Io)?));
    let mut reader = BufReader::new(stream);

    Frame::Hello {
        worker: config.name.clone(),
    }
    .write_to(&mut *writer.lock().unwrap())?;
    let (worker_id, heartbeat_ms) = match Frame::read_from(&mut reader)? {
        Frame::Welcome {
            worker_id,
            heartbeat_ms,
        } => (worker_id, heartbeat_ms),
        other => {
            return Err(DistError::Protocol(format!(
                "expected welcome, got {}",
                other.kind_name()
            )))
        }
    };

    // Beat from the moment we are welcomed: the corpus install below
    // can take seconds and must not read as death.
    let stop = Arc::new(AtomicBool::new(false));
    let beat_handle = {
        let writer = writer.clone();
        let stop = stop.clone();
        let cadence = Duration::from_millis(heartbeat_ms.max(1));
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(cadence);
                let beat = Frame::Heartbeat { worker_id, seq };
                if beat.write_to(&mut *writer.lock().unwrap()).is_err() {
                    break;
                }
                seq += 1;
            }
        })
    };

    let served = serve(&mut reader, &writer, worker_id, config);
    stop.store(true, Ordering::Relaxed);
    let _ = beat_handle.join();
    served
}

fn serve(
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    worker_id: u64,
    config: &WorkerConfig,
) -> Result<u64, DistError> {
    // Bootstrap: install the corpus in the order shipped (name order),
    // so every worker lands on the same catalog epoch.
    let policies = match Frame::read_from(reader)? {
        Frame::LoadCorpus { policies } => policies,
        other => {
            return Err(DistError::Protocol(format!(
                "expected load_corpus, got {}",
                other.kind_name()
            )))
        }
    };
    let mut server = PolicyServer::new();
    let count = policies.len() as u64;
    for (_, xml) in &policies {
        server.install_policy_xml(xml)?;
    }
    let shared = SharedServer::new(server);
    let pool = MatchPool::new(&shared);
    Frame::CorpusReady {
        worker_id,
        epoch: pool.snapshot_epoch(),
        policies: count,
    }
    .write_to(&mut *writer.lock().unwrap())?;

    // One pinned snapshot + parsed ruleset per sweep.
    let mut sweep: Option<(u64, EngineKind, Ruleset, Arc<PolicyServer>)> = None;
    let mut served = 0u64;
    loop {
        match Frame::read_from(reader) {
            Ok(Frame::BeginSweep {
                sweep_id,
                engine,
                ruleset_xml,
            }) => {
                let ruleset = Ruleset::parse(&ruleset_xml)
                    .map_err(|e| DistError::Protocol(format!("bad ruleset: {e}")))?;
                sweep = Some((sweep_id, engine, ruleset, pool.pin()));
            }
            Ok(Frame::Job {
                sweep_id,
                job_id,
                names,
            }) => {
                let Some((armed_id, engine, ruleset, pinned)) = sweep.as_ref() else {
                    Frame::Error {
                        code: 1,
                        message: format!("job {job_id} before any begin_sweep"),
                    }
                    .write_to(&mut *writer.lock().unwrap())?;
                    continue;
                };
                if *armed_id != sweep_id {
                    Frame::Error {
                        code: 2,
                        message: format!("job {job_id} for unknown sweep {sweep_id}"),
                    }
                    .write_to(&mut *writer.lock().unwrap())?;
                    continue;
                }
                let start = Instant::now();
                let verdicts = pinned.match_corpus_subset(ruleset, *engine, Some(&names))?;
                let elapsed_us = start.elapsed().as_micros() as u64;
                if config.delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(config.delay_ms));
                }
                Frame::JobResult {
                    job_id,
                    epoch: pinned.catalog_epoch(),
                    elapsed_us,
                    verdicts,
                }
                .write_to(&mut *writer.lock().unwrap())?;
                served += 1;
            }
            Ok(Frame::Shutdown) => break,
            Ok(Frame::Error { code, message }) => {
                return Err(DistError::Protocol(format!(
                    "scheduler error {code}: {message}"
                )))
            }
            Ok(_) => {
                // Frames a scheduler should never send mid-session.
            }
            // EOF: the scheduler went away; drain quietly.
            Err(WireError::Io(_)) => break,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(served)
}
