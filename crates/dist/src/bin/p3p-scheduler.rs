//! Shard scheduler: load the deterministic workload corpus, spawn (or
//! await) a worker fleet, run one distributed sweep, print the fold.
//!
//! ```text
//! p3p-scheduler [--workers 4] [--policies 2000] [--seed 42]
//!               [--engine sql] [--shard-size 64] [--sensitivity high]
//!               [--listen 127.0.0.1:0] [--no-spawn]
//! ```
//!
//! By default the scheduler spawns its own fleet of `p3p-worker`
//! processes (found next to the scheduler binary); `--no-spawn` makes
//! it wait for externally started workers instead.

use p3p_dist::{corpus_server, SchedConfig, Scheduler};
use p3p_server::EngineKind;
use p3p_workload::Sensitivity;
use std::process::{Child, Command};

fn main() {
    let mut workers = 4usize;
    let mut policies = 2000usize;
    let mut seed = 42u64;
    let mut engine = EngineKind::Sql;
    let mut shard_size = 64usize;
    let mut sensitivity = Sensitivity::High;
    let mut listen = "127.0.0.1:0".to_string();
    let mut spawn = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => workers = parse(&mut args, "--workers"),
            "--policies" => policies = parse(&mut args, "--policies"),
            "--seed" => seed = parse(&mut args, "--seed"),
            "--shard-size" => shard_size = parse(&mut args, "--shard-size"),
            "--listen" => listen = expect_value(&mut args, "--listen"),
            "--no-spawn" => spawn = false,
            "--engine" => {
                let v = expect_value(&mut args, "--engine");
                engine = *EngineKind::ALL
                    .iter()
                    .find(|e| e.metric_label() == v)
                    .unwrap_or_else(|| usage(&format!("unknown engine {v}")));
            }
            "--sensitivity" => {
                sensitivity = match expect_value(&mut args, "--sensitivity").as_str() {
                    "very-low" => Sensitivity::VeryLow,
                    "low" => Sensitivity::Low,
                    "medium" => Sensitivity::Medium,
                    "high" => Sensitivity::High,
                    "very-high" => Sensitivity::VeryHigh,
                    other => usage(&format!("unknown sensitivity {other}")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let server = match corpus_server(seed, policies) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("p3p-scheduler: corpus install failed: {e}");
            std::process::exit(1);
        }
    };
    let mut sched = match Scheduler::bind(&listen, server, SchedConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("p3p-scheduler: bind {listen} failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = sched.local_addr();
    eprintln!("p3p-scheduler: listening on {addr}, waiting for {workers} workers");

    let mut children: Vec<Child> = Vec::new();
    if spawn {
        let bin = worker_binary();
        for i in 0..workers {
            match Command::new(&bin)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--name")
                .arg(format!("w{i}"))
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    eprintln!("p3p-scheduler: failed to spawn {}: {e}", bin.display());
                    std::process::exit(1);
                }
            }
        }
    }

    if let Err(e) = sched.accept_workers(workers) {
        eprintln!("p3p-scheduler: fleet bootstrap failed: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "p3p-scheduler: fleet ready at catalog epoch {}",
        sched.catalog_epoch()
    );

    let ruleset = sensitivity.ruleset();
    let start = std::time::Instant::now();
    let report = match sched.sweep(&ruleset, engine, shard_size) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("p3p-scheduler: sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed();

    let blocked = report
        .verdicts
        .iter()
        .filter(|(_, v)| v.fired_rule.is_none() || v.behavior.as_str() == "block")
        .count();
    println!(
        "swept {} policies with {} in {:.1} ms (epoch {})",
        report.verdicts.len(),
        engine.metric_label(),
        elapsed.as_secs_f64() * 1e3,
        report.epoch
    );
    println!(
        "  jobs: {} dispatched, {} remote, {} local, {} requeued",
        report.stats.dispatched,
        report.stats.completed_remote,
        report.stats.completed_local,
        report.stats.requeued
    );
    println!(
        "  verdicts: {blocked} blocked / {} total",
        report.verdicts.len()
    );
    for (shard, worker, us) in &report.stats.shard_timings {
        eprintln!("  shard {shard}: worker {worker}, {us} us");
    }

    sched.shutdown();
    for mut child in children {
        let _ = child.wait();
    }
}

/// The worker binary ships next to the scheduler binary.
fn worker_binary() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("binary has a parent directory");
    let name = if cfg!(windows) {
        "p3p-worker.exe"
    } else {
        "p3p-worker"
    };
    dir.join(name)
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    expect_value(args, flag)
        .parse()
        .unwrap_or_else(|_| usage(&format!("{flag} takes a number")))
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: p3p-scheduler [--workers N] [--policies N] [--seed N] [--engine LABEL] \
         [--shard-size N] [--sensitivity very-low|low|medium|high|very-high] \
         [--listen ADDR] [--no-spawn]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
