//! Match worker: connect to a scheduler, rebuild the shipped corpus,
//! answer shard jobs until drained.
//!
//! ```text
//! p3p-worker --connect 127.0.0.1:7033 [--name w0] [--delay-ms 0]
//! ```

use p3p_dist::worker;
use p3p_dist::WorkerConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = String::new();
    let mut config = WorkerConfig {
        name: format!("worker-{}", std::process::id()),
        delay_ms: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = expect_value(&mut args, "--connect"),
            "--name" => config.name = expect_value(&mut args, "--name"),
            "--delay-ms" => {
                config.delay_ms = expect_value(&mut args, "--delay-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--delay-ms takes an integer"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if addr.is_empty() {
        usage("--connect is required");
    }
    match worker::run(&addr, &config) {
        Ok(jobs) => {
            eprintln!("p3p-worker {}: drained after {jobs} jobs", config.name);
        }
        Err(e) => {
            eprintln!("p3p-worker {}: {e}", config.name);
            std::process::exit(1);
        }
    }
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: p3p-worker --connect HOST:PORT [--name NAME] [--delay-ms N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
