//! The shard scheduler: owns the corpus roster, partitions it into
//! contiguous shards, dispatches them to connected workers, and folds
//! the shard results back into the exact name-ordered verdict list a
//! single-process [`PolicyServer::match_corpus`] call would produce.
//!
//! Threading model (three owners, one lock):
//!
//! * the **sweep thread** (the caller of [`Scheduler::sweep`]) owns all
//!   socket *writes* and the local-fallback engine;
//! * one **reader thread per worker** owns that socket's *reads* and
//!   marks the worker dead on EOF — the fast death signal when a
//!   process is killed;
//! * the **reaper thread** owns heartbeat-miss detection (the slow
//!   death signal for silently hung workers) and straggler requeue.
//!
//! All three share one `Mutex<SweepState>` + `Condvar`. A shard that
//! dies with its worker is re-queued (retry-once on another worker);
//! a shard that fails twice is matched locally on the scheduler's own
//! server, so a sweep always completes as long as the scheduler lives.

use crate::proto::Frame;
use crate::DistError;
use p3p_appel::engine::Verdict;
use p3p_appel::model::Ruleset;
use p3p_server::{EngineKind, PolicyServer};
use p3p_telemetry::metrics;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one scheduler instance.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Heartbeat cadence workers are held to (also sent in `Welcome`).
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats before a worker is declared dead.
    pub miss_threshold: u32,
    /// A shard in flight longer than this is re-queued even if its
    /// worker still heartbeats (straggler defence). Generous by
    /// default: the box may be oversubscribed and slow ≠ dead.
    pub straggler_ms: u64,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            heartbeat_ms: 250,
            miss_threshold: 8,
            straggler_ms: 120_000,
        }
    }
}

/// What happened during one sweep, beyond the verdicts themselves.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Jobs sent to workers (requeues dispatch again, so this can
    /// exceed the shard count).
    pub dispatched: u64,
    /// Shards answered by a worker.
    pub completed_remote: u64,
    /// Shards matched by the scheduler's local fallback engine.
    pub completed_local: u64,
    /// Shards re-queued off dead or straggling workers.
    pub requeued: u64,
    /// Per-shard timing as reported by the worker that decided it:
    /// `(shard index, worker id, elapsed µs)`.
    pub shard_timings: Vec<(u64, u64, u64)>,
}

/// A finished sweep: the catalog epoch the whole fleet was pinned to,
/// the folded name-ordered verdicts, and the bookkeeping.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub epoch: u64,
    pub verdicts: Vec<(String, Verdict)>,
    pub stats: SweepStats,
}

/// Fired by the sweep loop once per accepted shard result, *after* the
/// next job (if any) has been dispatched to the completing worker —
/// the hook fault-injection tests use to kill a worker at a
/// deterministic point with a known job in flight.
pub type SweepObserver<'a> = dyn FnMut(u64, u64) + 'a;

struct WorkerConn {
    /// Write half (reads happen on the reader thread's clone).
    stream: TcpStream,
    name: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ShardStatus {
    Pending,
    InFlight,
    Done,
}

struct ShardState {
    status: ShardStatus,
    /// Dispatch count; a shard re-queued after 2 attempts falls back
    /// to the scheduler's local engine.
    attempts: u32,
    verdicts: Option<Vec<(String, Verdict)>>,
}

struct WorkerState {
    alive: bool,
    last_beat: Instant,
    misses: u32,
    /// Shard index this worker is computing, with dispatch time.
    busy: Option<(usize, Instant)>,
}

struct SweepState {
    workers: HashMap<u64, WorkerState>,
    shards: Vec<ShardState>,
    queue: Vec<usize>,
    /// Completions not yet seen by the sweep loop: (shard, worker, µs).
    finished: Vec<(usize, u64, u64)>,
    /// Epoch mismatches and other per-worker faults for the sweep loop
    /// to surface.
    faults: Vec<String>,
    /// Epoch every `JobResult` of the current sweep must report.
    expected_epoch: u64,
    /// Requeues charged during the current sweep.
    requeued: u64,
    sweeping: bool,
}

struct Shared {
    state: Mutex<SweepState>,
    cv: Condvar,
}

/// The scheduler: listener, handshaked worker fleet, local fallback
/// server, and the shared sweep state the reader/reaper threads feed.
pub struct Scheduler {
    listener: TcpListener,
    config: SchedConfig,
    /// The scheduler's own copy of the corpus — local fallback engine
    /// and the source of the `LoadCorpus` bootstrap payload.
    server: PolicyServer,
    shared: Arc<Shared>,
    conns: HashMap<u64, WorkerConn>,
    readers: Vec<std::thread::JoinHandle<()>>,
    reaper: Option<std::thread::JoinHandle<()>>,
    reaper_stop: Arc<AtomicBool>,
    /// Epoch every `CorpusReady` must agree on.
    fleet_epoch: Option<u64>,
    next_worker_id: u64,
    next_sweep_id: u64,
}

impl Scheduler {
    /// Bind to `addr` (use port 0 for an ephemeral port) with the
    /// corpus already installed on `server`.
    pub fn bind(
        addr: &str,
        server: PolicyServer,
        config: SchedConfig,
    ) -> Result<Scheduler, DistError> {
        let listener = TcpListener::bind(addr).map_err(crate::proto::WireError::Io)?;
        // Register and describe the whole metric surface up front: a
        // scrape taken before the first fault still sees the zeroed
        // families, each with a real HELP line.
        for (name, help) in [
            (
                "p3p_dist_jobs_dispatched_total",
                "Shard jobs sent to workers (requeues dispatch again)",
            ),
            (
                "p3p_dist_jobs_completed_total",
                "Shards folded into a sweep result, remote or local",
            ),
            (
                "p3p_dist_jobs_requeued_total",
                "Shards re-queued off dead or straggling workers",
            ),
            (
                "p3p_dist_heartbeat_misses_total",
                "Heartbeat deadlines a worker missed before being reaped",
            ),
        ] {
            metrics::describe(name, help);
            metrics::counter(name);
        }
        metrics::describe(
            "p3p_dist_workers_active",
            "Workers currently bootstrapped and alive",
        );
        metrics::gauge("p3p_dist_workers_active");
        Ok(Scheduler {
            listener,
            config,
            server,
            shared: Arc::new(Shared {
                state: Mutex::new(SweepState {
                    workers: HashMap::new(),
                    shards: Vec::new(),
                    queue: Vec::new(),
                    finished: Vec::new(),
                    faults: Vec::new(),
                    expected_epoch: 0,
                    requeued: 0,
                    sweeping: false,
                }),
                cv: Condvar::new(),
            }),
            conns: HashMap::new(),
            readers: Vec::new(),
            reaper: None,
            reaper_stop: Arc::new(AtomicBool::new(false)),
            fleet_epoch: None,
            next_worker_id: 0,
            next_sweep_id: 0,
        })
    }

    /// The bound address (workers connect here).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// The scheduler's local catalog epoch (what the fleet must match).
    pub fn catalog_epoch(&self) -> u64 {
        self.server.catalog_epoch()
    }

    /// Accept and bootstrap `n` workers: handshake, ship the corpus,
    /// wait for every `CorpusReady`, and verify the whole fleet landed
    /// on one catalog epoch. Bootstraps run in parallel — corpus
    /// installation is the expensive part and the workers do it
    /// concurrently.
    pub fn accept_workers(&mut self, n: usize) -> Result<(), DistError> {
        let corpus = self.server.policies_with_xml();
        let heartbeat_ms = self.config.heartbeat_ms;
        let mut pending = Vec::new();
        for _ in 0..n {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(crate::proto::WireError::Io)?;
            stream
                .set_nodelay(true)
                .map_err(crate::proto::WireError::Io)?;
            let worker_id = self.next_worker_id;
            self.next_worker_id += 1;
            let mut write_half = stream.try_clone().map_err(crate::proto::WireError::Io)?;
            let corpus = corpus.clone();
            // Handshake thread: Hello → Welcome → LoadCorpus →
            // CorpusReady, then hand the read half back.
            let handle = std::thread::spawn(
                move || -> Result<(TcpStream, TcpStream, String, u64, u64), DistError> {
                    let mut read_half = stream.try_clone().map_err(crate::proto::WireError::Io)?;
                    let name = match Frame::read_from(&mut read_half)? {
                        Frame::Hello { worker } => worker,
                        other => {
                            return Err(DistError::Protocol(format!(
                                "expected hello, got {}",
                                other.kind_name()
                            )))
                        }
                    };
                    Frame::Welcome {
                        worker_id,
                        heartbeat_ms,
                    }
                    .write_to(&mut write_half)?;
                    Frame::LoadCorpus { policies: corpus }.write_to(&mut write_half)?;
                    // The worker heartbeats while installing; skip beats
                    // until the ready frame arrives.
                    loop {
                        match Frame::read_from(&mut read_half)? {
                            Frame::Heartbeat { .. } => continue,
                            Frame::CorpusReady {
                                epoch, policies, ..
                            } => return Ok((read_half, write_half, name, epoch, policies)),
                            Frame::Error { code, message } => {
                                return Err(DistError::Protocol(format!(
                                    "worker bootstrap failed (code {code}): {message}"
                                )))
                            }
                            other => {
                                return Err(DistError::Protocol(format!(
                                    "expected corpus_ready, got {}",
                                    other.kind_name()
                                )))
                            }
                        }
                    }
                },
            );
            pending.push((worker_id, handle));
        }
        let expected_policies = self.server.policy_names().len() as u64;
        for (worker_id, handle) in pending {
            let (read_half, write_half, name, epoch, policies) = handle
                .join()
                .map_err(|_| DistError::Protocol("bootstrap thread panicked".into()))??;
            if policies != expected_policies {
                return Err(DistError::Protocol(format!(
                    "worker {name} installed {policies} policies, expected {expected_policies}"
                )));
            }
            match self.fleet_epoch {
                None => self.fleet_epoch = Some(epoch),
                Some(want) if want != epoch => {
                    return Err(DistError::EpochMismatch { want, got: epoch })
                }
                Some(_) => {}
            }
            {
                let mut st = self.shared.state.lock().unwrap();
                st.workers.insert(
                    worker_id,
                    WorkerState {
                        alive: true,
                        last_beat: Instant::now(),
                        misses: 0,
                        busy: None,
                    },
                );
            }
            metrics::gauge("p3p_dist_workers_active").add(1);
            self.conns.insert(
                worker_id,
                WorkerConn {
                    stream: write_half,
                    name,
                },
            );
            let shared = self.shared.clone();
            self.readers.push(std::thread::spawn(move || {
                reader_loop(worker_id, read_half, &shared);
            }));
        }
        self.start_reaper();
        Ok(())
    }

    fn start_reaper(&mut self) {
        if self.reaper.is_some() {
            return;
        }
        let shared = self.shared.clone();
        let stop = self.reaper_stop.clone();
        let heartbeat = Duration::from_millis(self.config.heartbeat_ms);
        let miss_threshold = self.config.miss_threshold;
        let straggler = Duration::from_millis(self.config.straggler_ms);
        self.reaper = Some(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(heartbeat);
                let mut st = shared.state.lock().unwrap();
                let mut changed = false;
                let mut to_requeue: Vec<usize> = Vec::new();
                for (_, w) in st.workers.iter_mut() {
                    if !w.alive {
                        continue;
                    }
                    // Grace of 1.5 beats before a miss is charged: one
                    // delayed beat is scheduling noise, not death.
                    if w.last_beat.elapsed() > heartbeat + heartbeat / 2 {
                        w.misses += 1;
                        w.last_beat = Instant::now();
                        metrics::counter("p3p_dist_heartbeat_misses_total").inc();
                        if w.misses >= miss_threshold {
                            w.alive = false;
                            metrics::gauge("p3p_dist_workers_active").add(-1);
                            if let Some((shard, _)) = w.busy.take() {
                                to_requeue.push(shard);
                            }
                            changed = true;
                        }
                    } else if let Some((shard, since)) = w.busy {
                        if since.elapsed() > straggler {
                            // Alive but slow: put the shard back up for
                            // grabs; first-writer-wins dedup makes the
                            // eventual duplicate result harmless.
                            w.busy = None;
                            to_requeue.push(shard);
                            changed = true;
                        }
                    }
                }
                for shard in to_requeue {
                    requeue_locked(&mut st, shard);
                }
                if changed {
                    shared.cv.notify_all();
                }
            }
        }));
    }

    /// Run one distributed sweep and fold the shards. See
    /// [`Scheduler::sweep_observed`] for the observer variant.
    pub fn sweep(
        &mut self,
        ruleset: &Ruleset,
        engine: EngineKind,
        shard_size: usize,
    ) -> Result<SweepReport, DistError> {
        self.sweep_observed(ruleset, engine, shard_size, &mut |_, _| {})
    }

    /// Run one sweep, invoking `observer(shard, worker)` after each
    /// accepted shard result (and after the completing worker has been
    /// handed its next job, so a kill fired from the observer always
    /// strands exactly one in-flight shard).
    pub fn sweep_observed(
        &mut self,
        ruleset: &Ruleset,
        engine: EngineKind,
        shard_size: usize,
        observer: &mut SweepObserver<'_>,
    ) -> Result<SweepReport, DistError> {
        let names = self.server.policy_names();
        let expected_epoch = self
            .fleet_epoch
            .unwrap_or_else(|| self.server.catalog_epoch());
        let shard_size = shard_size.max(1);
        let shard_names: Vec<Vec<String>> = names.chunks(shard_size).map(|c| c.to_vec()).collect();
        let sweep_id = self.next_sweep_id;
        self.next_sweep_id += 1;

        // Arm the sweep state.
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shards = shard_names
                .iter()
                .map(|_| ShardState {
                    status: ShardStatus::Pending,
                    attempts: 0,
                    verdicts: None,
                })
                .collect();
            st.queue = (0..shard_names.len()).collect();
            st.finished.clear();
            st.faults.clear();
            st.expected_epoch = expected_epoch;
            st.requeued = 0;
            st.sweeping = true;
            for w in st.workers.values_mut() {
                w.busy = None;
            }
        }

        // Announce the sweep to every live worker; a worker that dies
        // on the announce is marked dead like any other write failure.
        let ruleset_xml = ruleset.to_xml();
        let live: Vec<u64> = {
            let st = self.shared.state.lock().unwrap();
            st.workers
                .iter()
                .filter(|(_, w)| w.alive)
                .map(|(id, _)| *id)
                .collect()
        };
        for id in live {
            let frame = Frame::BeginSweep {
                sweep_id,
                engine,
                ruleset_xml: ruleset_xml.clone(),
            };
            self.send_or_kill(id, &frame);
        }

        let mut stats = SweepStats::default();
        loop {
            // Dispatch every pending shard to every idle live worker,
            // process completions, and fall back locally when remote
            // capacity is exhausted — all decided under one lock, with
            // socket writes and local matching done outside it.
            enum Action {
                Dispatch(u64, usize, Vec<String>),
                Finished(usize, u64, u64),
                Local(usize, Vec<String>),
                Fault(String),
                Done,
                Wait,
            }
            let action = {
                let mut st = self.shared.state.lock().unwrap();
                if let Some(fault) = st.faults.pop() {
                    Action::Fault(fault)
                } else if let Some((shard, worker, us)) = st.finished.pop() {
                    Action::Finished(shard, worker, us)
                } else if st.shards.iter().all(|s| s.status == ShardStatus::Done) {
                    Action::Done
                } else if let Some(&shard) = st.queue.last() {
                    // Retry-once: a shard whose second remote attempt
                    // also died is matched locally, as is everything
                    // once no live worker remains.
                    let idle = st
                        .workers
                        .iter()
                        .filter(|(_, w)| w.alive && w.busy.is_none())
                        .map(|(id, _)| *id)
                        .next();
                    let any_alive = st.workers.values().any(|w| w.alive);
                    let attempts = st.shards[shard].attempts;
                    if attempts >= 2 || !any_alive {
                        st.queue.pop();
                        st.shards[shard].status = ShardStatus::InFlight;
                        Action::Local(shard, shard_names[shard].clone())
                    } else if let Some(worker) = idle {
                        st.queue.pop();
                        st.shards[shard].status = ShardStatus::InFlight;
                        st.shards[shard].attempts += 1;
                        st.workers.get_mut(&worker).unwrap().busy = Some((shard, Instant::now()));
                        Action::Dispatch(worker, shard, shard_names[shard].clone())
                    } else {
                        Action::Wait
                    }
                } else {
                    Action::Wait
                }
            };
            match action {
                Action::Dispatch(worker, shard, names) => {
                    let frame = Frame::Job {
                        sweep_id,
                        job_id: shard as u64,
                        names,
                    };
                    stats.dispatched += 1;
                    metrics::counter("p3p_dist_jobs_dispatched_total").inc();
                    self.send_or_kill(worker, &frame);
                }
                Action::Finished(shard, worker, us) => {
                    stats.completed_remote += 1;
                    stats.shard_timings.push((shard as u64, worker, us));
                    metrics::counter("p3p_dist_jobs_completed_total").inc();
                    // Next job first, then the observer — see the
                    // SweepObserver contract.
                    self.dispatch_next_to(sweep_id, worker, &shard_names, &mut stats);
                    observer(shard as u64, worker);
                }
                Action::Local(shard, names) => {
                    let verdicts =
                        self.server
                            .match_corpus_subset(ruleset, engine, Some(&names))?;
                    stats.completed_local += 1;
                    metrics::counter("p3p_dist_jobs_completed_total").inc();
                    let mut st = self.shared.state.lock().unwrap();
                    if st.shards[shard].status != ShardStatus::Done {
                        st.shards[shard].status = ShardStatus::Done;
                        st.shards[shard].verdicts = Some(verdicts);
                    }
                }
                Action::Fault(fault) => {
                    // Worker faults (epoch mismatch, malformed result)
                    // killed the worker and re-queued its shard; they
                    // are logged, not fatal — the sweep still folds.
                    eprintln!("p3p-scheduler: {fault}");
                }
                Action::Done => break,
                Action::Wait => {
                    let st = self.shared.state.lock().unwrap();
                    let _unused = self
                        .shared
                        .cv
                        .wait_timeout(st, Duration::from_millis(20))
                        .unwrap();
                }
            }
        }

        // Fold: contiguous shards of a sorted roster concatenate back
        // into name order — identical to a single match_corpus call.
        let mut verdicts = Vec::with_capacity(names.len());
        {
            let mut st = self.shared.state.lock().unwrap();
            st.sweeping = false;
            stats.requeued = st.requeued;
            for shard in st.shards.iter_mut() {
                verdicts.extend(shard.verdicts.take().expect("done shard has verdicts"));
            }
        }
        Ok(SweepReport {
            epoch: expected_epoch,
            verdicts,
            stats,
        })
    }

    /// Hand the completing worker its next shard, if any is pending.
    fn dispatch_next_to(
        &mut self,
        sweep_id: u64,
        worker: u64,
        shard_names: &[Vec<String>],
        stats: &mut SweepStats,
    ) {
        let next = {
            let mut st = self.shared.state.lock().unwrap();
            let alive_idle = st
                .workers
                .get(&worker)
                .is_some_and(|w| w.alive && w.busy.is_none());
            if !alive_idle {
                None
            } else {
                // Skip shards already bound for local fallback.
                let pos = st.queue.iter().rposition(|&s| st.shards[s].attempts < 2);
                pos.map(|p| {
                    let shard = st.queue.remove(p);
                    st.shards[shard].status = ShardStatus::InFlight;
                    st.shards[shard].attempts += 1;
                    st.workers.get_mut(&worker).unwrap().busy = Some((shard, Instant::now()));
                    shard
                })
            }
        };
        if let Some(shard) = next {
            let frame = Frame::Job {
                sweep_id,
                job_id: shard as u64,
                names: shard_names[shard].clone(),
            };
            stats.dispatched += 1;
            metrics::counter("p3p_dist_jobs_dispatched_total").inc();
            self.send_or_kill(worker, &frame);
        }
    }

    /// Write a frame to a worker; a failed write means the worker is
    /// gone, so mark it dead and re-queue whatever it was computing.
    fn send_or_kill(&mut self, worker: u64, frame: &Frame) {
        let ok = match self.conns.get_mut(&worker) {
            Some(conn) => frame.write_to(&mut conn.stream).is_ok(),
            None => false,
        };
        if !ok {
            let mut st = self.shared.state.lock().unwrap();
            kill_locked(&mut st, worker);
            self.shared.cv.notify_all();
        }
    }

    /// Graceful drain: ask every live worker to finish and exit, stop
    /// the reaper, and join the reader threads.
    pub fn shutdown(&mut self) {
        let live: Vec<u64> = {
            let st = self.shared.state.lock().unwrap();
            st.workers
                .iter()
                .filter(|(_, w)| w.alive)
                .map(|(id, _)| *id)
                .collect()
        };
        for id in live {
            if let Some(conn) = self.conns.get_mut(&id) {
                let _ = Frame::Shutdown.write_to(&mut conn.stream);
            }
        }
        self.reaper_stop.store(true, Ordering::Relaxed);
        if let Some(r) = self.reaper.take() {
            let _ = r.join();
        }
        // Close every connection before joining the readers: a reader
        // parked on a worker that is dead but still holds its socket
        // open would otherwise block the join forever. The Shutdown
        // frames above are already flushed, so live workers still
        // drain cleanly off their queued bytes.
        for conn in self.conns.values() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        self.conns.clear();
        let mut st = self.shared.state.lock().unwrap();
        for (_, w) in st.workers.iter_mut() {
            if w.alive {
                w.alive = false;
                metrics::gauge("p3p_dist_workers_active").add(-1);
            }
        }
    }

    /// Worker names by id (for reports and logs).
    pub fn worker_names(&self) -> Vec<(u64, String)> {
        let mut v: Vec<(u64, String)> = self
            .conns
            .iter()
            .map(|(id, c)| (*id, c.name.clone()))
            .collect();
        v.sort();
        v
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Mark a worker dead and re-queue its in-flight shard. Caller holds
/// the state lock.
fn kill_locked(st: &mut SweepState, worker: u64) {
    if let Some(w) = st.workers.get_mut(&worker) {
        if w.alive {
            w.alive = false;
            metrics::gauge("p3p_dist_workers_active").add(-1);
        }
        if let Some((shard, _)) = w.busy.take() {
            requeue_locked(st, shard);
        }
    }
}

/// Put a shard back in the queue unless it already finished (a late
/// duplicate result may have beaten the requeue).
fn requeue_locked(st: &mut SweepState, shard: usize) {
    if st
        .shards
        .get(shard)
        .is_some_and(|s| s.status != ShardStatus::Done)
    {
        st.shards[shard].status = ShardStatus::Pending;
        st.queue.push(shard);
        st.requeued += 1;
        metrics::counter("p3p_dist_jobs_requeued_total").inc();
    }
}

/// Per-worker read loop: results, heartbeats, faults. EOF or a read
/// error marks the worker dead — the fast path when a worker process
/// is killed and the OS resets its socket.
fn reader_loop(worker_id: u64, read_half: TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(read_half);
    loop {
        match Frame::read_from(&mut reader) {
            Ok(Frame::Heartbeat { .. }) => {
                let mut st = shared.state.lock().unwrap();
                if let Some(w) = st.workers.get_mut(&worker_id) {
                    w.last_beat = Instant::now();
                    w.misses = 0;
                }
            }
            Ok(Frame::JobResult {
                job_id,
                epoch,
                elapsed_us,
                verdicts,
            }) => {
                let mut st = shared.state.lock().unwrap();
                let expected = st.shards.len() as u64;
                if job_id >= expected {
                    st.faults
                        .push(format!("worker {worker_id} answered unknown job {job_id}"));
                    kill_locked(&mut st, worker_id);
                    shared.cv.notify_all();
                    continue;
                }
                let shard = job_id as usize;
                if let Some(w) = st.workers.get_mut(&worker_id) {
                    w.last_beat = Instant::now();
                    w.misses = 0;
                    // Clear busy only if this worker was computing this
                    // shard (a straggler may have been unassigned).
                    if w.busy.is_some_and(|(s, _)| s == shard) {
                        w.busy = None;
                    }
                }
                // An epoch mismatch means the worker's catalog view
                // diverged from the fleet's — its verdicts cannot be
                // trusted. Kill it and re-queue the shard.
                if epoch != st.expected_epoch {
                    let pinned = st.expected_epoch;
                    st.faults.push(format!(
                        "worker {worker_id} answered job {job_id} at epoch {epoch}, fleet pinned {pinned}"
                    ));
                    kill_locked(&mut st, worker_id);
                    requeue_locked(&mut st, shard);
                    shared.cv.notify_all();
                    continue;
                }
                // First-writer-wins: a duplicate result for a shard
                // another worker already answered is dropped.
                if st.shards[shard].status != ShardStatus::Done {
                    st.shards[shard].status = ShardStatus::Done;
                    st.shards[shard].verdicts = Some(verdicts);
                    st.finished.push((shard, worker_id, elapsed_us));
                }
                shared.cv.notify_all();
            }
            Ok(Frame::Error { code, message }) => {
                let mut st = shared.state.lock().unwrap();
                st.faults.push(format!(
                    "worker {worker_id} reported error {code}: {message}"
                ));
                kill_locked(&mut st, worker_id);
                shared.cv.notify_all();
                break;
            }
            Ok(_) => {
                // Frames a worker should never send; ignore.
            }
            Err(_) => {
                let mut st = shared.state.lock().unwrap();
                kill_locked(&mut st, worker_id);
                shared.cv.notify_all();
                break;
            }
        }
    }
}
