//! Distributed corpus matching: a shard scheduler and a worker fleet
//! speaking a length-prefixed binary wire protocol over TCP.
//!
//! The paper's server-centric architecture (§3.3) puts matching next
//! to the database; this crate stretches that across processes. The
//! scheduler owns the corpus roster and partitions it into contiguous
//! shards — the same shard primitive as the in-process
//! [`MatchPool`](p3p_server::concurrent::MatchPool) — and a fleet of
//! worker processes each rebuilds the catalog from a serialized
//! bootstrap payload, pins one catalog epoch per sweep, and answers
//! shard jobs. Because the roster is sorted and shards are contiguous,
//! folding the shard results back together reproduces, byte for byte,
//! what a single-process `match_corpus` call would return.
//!
//! Robustness: workers heartbeat on a dedicated thread; a reaper
//! re-queues shards from dead or straggling workers (retry-once, then
//! the scheduler matches the shard locally), so a sweep completes as
//! long as the scheduler itself survives.
//!
//! Telemetry: `p3p_dist_jobs_dispatched_total`,
//! `p3p_dist_jobs_completed_total`, `p3p_dist_jobs_requeued_total`,
//! `p3p_dist_heartbeat_misses_total` (counters) and
//! `p3p_dist_workers_active` (gauge) flow through the shared
//! `p3p-telemetry` registry.

pub mod proto;
pub mod sched;
pub mod worker;

pub use proto::{Frame, WireError};
pub use sched::{SchedConfig, Scheduler, SweepReport, SweepStats};
pub use worker::WorkerConfig;

use p3p_server::PolicyServer;

/// Anything that can go wrong on either side of the wire.
#[derive(Debug)]
pub enum DistError {
    /// Frame-level failure (truncation, bad magic, socket error, …).
    Wire(WireError),
    /// A structurally valid frame that violates the session protocol
    /// (wrong frame at the wrong time, unknown sweep, bad ruleset).
    Protocol(String),
    /// Policy-server failure while installing or matching.
    Server(p3p_server::ServerError),
    /// The fleet did not converge on one catalog epoch.
    EpochMismatch { want: u64, got: u64 },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Wire(e) => write!(f, "wire: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol: {msg}"),
            DistError::Server(e) => write!(f, "server: {e}"),
            DistError::EpochMismatch { want, got } => {
                write!(
                    f,
                    "catalog epoch mismatch: fleet pinned {want}, worker reported {got}"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<WireError> for DistError {
    fn from(e: WireError) -> DistError {
        DistError::Wire(e)
    }
}

impl From<p3p_server::ServerError> for DistError {
    fn from(e: p3p_server::ServerError) -> DistError {
        DistError::Server(e)
    }
}

/// A server loaded with the deterministic workload corpus — the shared
/// starting point for scheduler binaries, benches, and tests.
pub fn corpus_server(seed: u64, n: usize) -> Result<PolicyServer, DistError> {
    let mut server = PolicyServer::new();
    for policy in p3p_workload::corpus_n(seed, n) {
        server.install_policy(&policy)?;
    }
    Ok(server)
}
