//! A minimal blocking HTTP/1.1 client for the daemon's tests and the
//! load generator: keep-alive, Content-Length framing only — exactly
//! the dialect the server speaks.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    /// Header names lowercased.
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Body as lossy UTF-8.
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to the daemon.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect with a generous default timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(30))
    }

    /// Connect; `timeout` bounds connect, reads, and writes.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Send one request and read the response. `path` includes any
    /// query string.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: p3p\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Write raw bytes on the connection (conformance tests craft
    /// malformed requests with this).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Read one response off the connection (pairs with `send_raw`
    /// for pipelining tests).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {line:?}"),
                )
            })?;
        let mut headers = BTreeMap::new();
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside headers",
                ));
            }
            let header = header.trim_end_matches(['\r', '\n']);
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
