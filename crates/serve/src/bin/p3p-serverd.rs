//! `p3p-serverd` — the policy-server daemon binary.
//!
//! Binds the HTTP listener, optionally pre-installs a synthetic
//! corpus, prints `listening on ADDR` once ready, and serves until
//! SIGTERM (or SIGINT), at which point it drains gracefully: stops
//! accepting, completes in-flight requests, flushes the metrics
//! snapshot, and exits 0.

use p3p_serve::daemon::{Daemon, ServeConfig};
use p3p_server::PolicyServer;
use p3p_telemetry::metrics;
use std::io::Write;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // libc is always linked on unix targets; declaring the symbol
        // directly avoids an external crate for two signal hooks.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

fn usage() -> ! {
    eprintln!(
        "usage: p3p-serverd [options]\n\
         \n\
         --bind ADDR          listen address (default 127.0.0.1:0)\n\
         --workers N          worker threads (default 4)\n\
         --queue-depth N      connection queue capacity (default 128)\n\
         --match-limit N      in-flight cap for /match (default 64, 0 = unlimited)\n\
         --corpus-seed S      seed for the synthetic bootstrap corpus (default 42)\n\
         --corpus-n N         pre-install N synthetic policies (default 0)\n\
         --verdict-cache N    verdict-cache capacity (default: server default)\n\
         --delay-ms MS        artificial per-request delay, for drain drills (default 0)\n\
         --metrics-out PATH   write the final metrics JSON snapshot here on exit"
    );
    exit(2)
}

struct Args {
    bind: String,
    config: ServeConfig,
    corpus_seed: u64,
    corpus_n: usize,
    verdict_cache: Option<usize>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        bind: "127.0.0.1:0".to_string(),
        config: ServeConfig::default(),
        corpus_seed: 42,
        corpus_n: 0,
        verdict_cache: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("p3p-serverd: {name} needs a value");
                exit(2)
            })
        };
        match flag.as_str() {
            "--bind" => args.bind = value("--bind"),
            "--workers" => args.config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-depth" => {
                args.config.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth")
            }
            "--match-limit" => {
                args.config.limits.match_ = parse_num(&value("--match-limit"), "--match-limit")
            }
            "--corpus-seed" => {
                args.corpus_seed = parse_num(&value("--corpus-seed"), "--corpus-seed")
            }
            "--corpus-n" => args.corpus_n = parse_num(&value("--corpus-n"), "--corpus-n"),
            "--verdict-cache" => {
                args.verdict_cache = Some(parse_num(&value("--verdict-cache"), "--verdict-cache"))
            }
            "--delay-ms" => args.config.delay_ms = parse_num(&value("--delay-ms"), "--delay-ms"),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("p3p-serverd: unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("p3p-serverd: bad value for {flag}: {raw}");
        exit(2)
    })
}

fn main() {
    let args = parse_args();
    sig::install();

    let mut server = PolicyServer::new();
    if let Some(capacity) = args.verdict_cache {
        server.set_verdict_cache_capacity(capacity);
    }
    if args.corpus_n > 0 {
        let started = Instant::now();
        eprintln!(
            "p3p-serverd: installing {} synthetic policies (seed {})",
            args.corpus_n, args.corpus_seed
        );
        for policy in p3p_workload::corpus_n(args.corpus_seed, args.corpus_n) {
            if let Err(e) = server.install_policy(&policy) {
                eprintln!("p3p-serverd: corpus install failed: {e}");
                exit(1);
            }
        }
        eprintln!(
            "p3p-serverd: corpus ready in {:.1}s (epoch {})",
            started.elapsed().as_secs_f64(),
            server.catalog_epoch()
        );
    }

    let daemon = match Daemon::bind(&args.bind, server, args.config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("p3p-serverd: bind {} failed: {e}", args.bind);
            exit(1);
        }
    };
    // The readiness line tests and tooling parse; flushed so a piped
    // reader sees it immediately.
    println!("listening on {}", daemon.local_addr());
    let _ = std::io::stdout().flush();

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
    }

    eprintln!("p3p-serverd: signal received, draining");
    daemon.begin_drain();
    let stats = daemon.join();
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, metrics::snapshot_json()) {
            eprintln!("p3p-serverd: writing {path} failed: {e}");
        }
    }
    eprintln!(
        "p3p-serverd: drained (connections {}, served {}, rejected {}, in-flight completed {})",
        stats.connections, stats.served, stats.rejected, stats.drained_in_flight
    );
    exit(0)
}
