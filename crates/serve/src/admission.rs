//! Admission control: a bounded connection queue feeding the worker
//! pool, plus per-endpoint in-flight concurrency limits.
//!
//! Two layers of backpressure, both answering 429 with `Retry-After`
//! instead of stalling or dropping:
//!
//! 1. **Connection queue** — accepted sockets wait in a bounded FIFO
//!    for a worker. When the queue is full the accept loop answers
//!    429 immediately and closes (`p3p_http_rejected_total{reason=
//!    "queue_full"}`); the queue length is exported live as the
//!    `p3p_http_queue_depth` gauge.
//! 2. **Per-endpoint limits** — each endpoint class has a cap on
//!    requests being processed at once. A request over the cap is
//!    answered 429 on its own connection (which stays usable) and
//!    counted under `p3p_http_rejected_total{reason="concurrency"}`.

use p3p_telemetry::metrics;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The endpoint classes the daemon serves, as admission units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Install,
    Match,
    MatchCorpus,
    Metrics,
    Health,
}

impl Endpoint {
    pub const ALL: &'static [Endpoint] = &[
        Endpoint::Install,
        Endpoint::Match,
        Endpoint::MatchCorpus,
        Endpoint::Metrics,
        Endpoint::Health,
    ];

    /// Stable `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Install => "install",
            Endpoint::Match => "match",
            Endpoint::MatchCorpus => "match_corpus",
            Endpoint::Metrics => "metrics",
            Endpoint::Health => "health",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Install => 0,
            Endpoint::Match => 1,
            Endpoint::MatchCorpus => 2,
            Endpoint::Metrics => 3,
            Endpoint::Health => 4,
        }
    }
}

/// Per-endpoint in-flight caps. Zero means unlimited.
#[derive(Debug, Clone)]
pub struct EndpointLimits {
    pub install: usize,
    pub match_: usize,
    pub match_corpus: usize,
    pub metrics: usize,
    pub health: usize,
}

impl Default for EndpointLimits {
    fn default() -> EndpointLimits {
        EndpointLimits {
            // Installs serialize on the primary lock anyway; a small
            // cap keeps them from starving match traffic.
            install: 4,
            match_: 64,
            // Corpus sweeps are the heavy hitters: a couple at a time.
            match_corpus: 2,
            metrics: 4,
            health: 8,
        }
    }
}

impl EndpointLimits {
    fn cap(&self, endpoint: Endpoint) -> usize {
        match endpoint {
            Endpoint::Install => self.install,
            Endpoint::Match => self.match_,
            Endpoint::MatchCorpus => self.match_corpus,
            Endpoint::Metrics => self.metrics,
            Endpoint::Health => self.health,
        }
    }
}

/// Why a request (or connection) was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The connection queue is full; answered at accept time.
    QueueFull,
    /// The endpoint's in-flight cap is reached; answered per request.
    Concurrency(Endpoint),
}

impl Rejection {
    /// Seconds the client should wait before retrying.
    pub fn retry_after_secs(self) -> u64 {
        1
    }

    pub fn reason(self) -> &'static str {
        match self {
            Rejection::QueueFull => "queue_full",
            Rejection::Concurrency(_) => "concurrency",
        }
    }
}

/// Shared admission state.
pub struct Admission {
    limits: EndpointLimits,
    in_flight: [AtomicUsize; 5],
    queue: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl Admission {
    pub fn new(capacity: usize, limits: EndpointLimits) -> Arc<Admission> {
        Arc::new(Admission {
            limits,
            in_flight: std::array::from_fn(|_| AtomicUsize::new(0)),
            queue: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Enqueue an accepted connection, or reject when the queue is at
    /// capacity (the stream is handed back so the caller can answer
    /// 429 on it).
    pub fn enqueue(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut queue = self.queue.lock().unwrap();
        if queue.conns.len() >= self.capacity {
            metrics::counter_with("p3p_http_rejected_total", &[("reason", "queue_full")]).inc();
            return Err(stream);
        }
        queue.conns.push_back(stream);
        metrics::gauge("p3p_http_queue_depth").set(queue.conns.len() as i64);
        drop(queue);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue with a poll interval so workers notice
    /// [`Admission::close`] promptly. `None` means: queue closed and
    /// drained — the worker should exit.
    pub fn dequeue(&self, poll: Duration) -> Option<TcpStream> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(stream) = queue.conns.pop_front() {
                metrics::gauge("p3p_http_queue_depth").set(queue.conns.len() as i64);
                return Some(stream);
            }
            if queue.closed {
                return None;
            }
            let (q, _timeout) = self.ready.wait_timeout(queue, poll).unwrap();
            queue = q;
        }
    }

    /// Close the queue: workers drain what is already queued, then
    /// exit. New [`Admission::enqueue`] calls still succeed until the
    /// accept loop stops — drain closes the listener first.
    pub fn close(&self) {
        self.queue.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Number of connections waiting for a worker.
    pub fn depth(&self) -> usize {
        self.queue.lock().unwrap().conns.len()
    }

    /// Try to start processing a request on `endpoint`. The returned
    /// guard decrements the in-flight count on drop.
    pub fn try_enter(self: &Arc<Admission>, endpoint: Endpoint) -> Result<InFlight, Rejection> {
        let cap = self.limits.cap(endpoint);
        let slot = &self.in_flight[endpoint.index()];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            if cap != 0 && current >= cap {
                metrics::counter_with("p3p_http_rejected_total", &[("reason", "concurrency")])
                    .inc();
                return Err(Rejection::Concurrency(endpoint));
            }
            match slot.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        metrics::gauge_with("p3p_http_in_flight", &[("endpoint", endpoint.label())])
            .set((current + 1) as i64);
        Ok(InFlight {
            admission: self.clone(),
            endpoint,
        })
    }

    /// Current in-flight count for an endpoint.
    pub fn in_flight(&self, endpoint: Endpoint) -> usize {
        self.in_flight[endpoint.index()].load(Ordering::Relaxed)
    }
}

/// RAII guard for one in-flight request.
pub struct InFlight {
    admission: Arc<Admission>,
    endpoint: Endpoint,
}

impl Drop for InFlight {
    fn drop(&mut self) {
        let slot = &self.admission.in_flight[self.endpoint.index()];
        let was = slot.fetch_sub(1, Ordering::AcqRel);
        metrics::gauge_with("p3p_http_in_flight", &[("endpoint", self.endpoint.label())])
            .set(was.saturating_sub(1) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_caps_enforced_and_released() {
        let admission = Admission::new(
            4,
            EndpointLimits {
                match_: 2,
                ..EndpointLimits::default()
            },
        );
        let a = admission.try_enter(Endpoint::Match).unwrap();
        let b = admission.try_enter(Endpoint::Match).unwrap();
        assert_eq!(admission.in_flight(Endpoint::Match), 2);
        let rejected = admission.try_enter(Endpoint::Match);
        assert!(matches!(rejected, Err(Rejection::Concurrency(_))));
        // Other endpoints are unaffected.
        let _h = admission.try_enter(Endpoint::Health).unwrap();
        drop(a);
        assert_eq!(admission.in_flight(Endpoint::Match), 1);
        let _c = admission.try_enter(Endpoint::Match).unwrap();
        drop(b);
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let admission = Admission::new(
            1,
            EndpointLimits {
                health: 0,
                ..EndpointLimits::default()
            },
        );
        let guards: Vec<_> = (0..100)
            .map(|_| admission.try_enter(Endpoint::Health).unwrap())
            .collect();
        assert_eq!(admission.in_flight(Endpoint::Health), 100);
        drop(guards);
        assert_eq!(admission.in_flight(Endpoint::Health), 0);
    }

    #[test]
    fn queue_rejects_when_full_and_closes_cleanly() {
        let admission = Admission::new(2, EndpointLimits::default());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dial = || {
            let client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            (client, server_side)
        };
        let (_c1, s1) = dial();
        let (_c2, s2) = dial();
        let (_c3, s3) = dial();
        assert!(admission.enqueue(s1).is_ok());
        assert!(admission.enqueue(s2).is_ok());
        assert_eq!(admission.depth(), 2);
        assert!(admission.enqueue(s3).is_err(), "third must bounce");

        assert!(admission.dequeue(Duration::from_millis(5)).is_some());
        assert!(admission.dequeue(Duration::from_millis(5)).is_some());
        admission.close();
        assert!(admission.dequeue(Duration::from_millis(5)).is_none());
    }
}
