//! Hand-rolled HTTP/1.1: incremental request parsing with typed errors
//! and a response writer.
//!
//! The daemon speaks just enough of RFC 9112 to serve the five
//! endpoints: request line + headers + `Content-Length` bodies,
//! keep-alive and pipelining on one connection, and hard limits on
//! every dimension an untrusted peer controls (request-line length,
//! header-block size, header count, body size). Every way a request
//! can be malformed maps to a typed [`HttpError`] that renders as a
//! 4xx/5xx response — never a panic, never a silent hang: reads carry
//! the socket's read timeout, so a stalled peer surfaces as
//! [`HttpError::Timeout`].

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Largest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Largest accepted header block (sum of all header lines).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Most header fields accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Default cap on `Content-Length` (policy XML is a few KB; rulesets
/// smaller). The daemon can lower or raise this per config.
pub const DEFAULT_MAX_BODY: usize = 4 * 1024 * 1024;

/// Everything that can go wrong while reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF at a request boundary: the peer closed a keep-alive
    /// connection. Not an error to answer — just stop.
    Closed,
    /// EOF or shutdown in the middle of a request.
    Truncated(&'static str),
    /// The socket read timed out mid-request.
    Timeout,
    /// Request line longer than [`MAX_REQUEST_LINE`] bytes.
    RequestLineTooLong,
    /// Request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine(String),
    /// Not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion(String),
    /// Method token the daemon does not implement.
    UnknownMethod(String),
    /// Header block exceeds [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// More than [`MAX_HEADERS`] header fields.
    TooManyHeaders,
    /// A header line without a `:` or with an empty name.
    BadHeader(String),
    /// Two `Content-Length` headers that disagree (request smuggling
    /// vector — rejected outright).
    DuplicateContentLength,
    /// `Content-Length` that does not parse as an integer.
    BadContentLength(String),
    /// `Transfer-Encoding` is not implemented; bodies are
    /// `Content-Length`-delimited only.
    UnsupportedTransferEncoding,
    /// Declared body larger than the configured cap.
    BodyTooLarge { limit: usize, declared: usize },
    /// Any other socket error.
    Io(io::Error),
}

impl HttpError {
    /// The status line this error answers with, or `None` when the
    /// connection just ends (clean close / truncation / IO error).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed | HttpError::Truncated(_) | HttpError::Io(_) => None,
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::RequestLineTooLong => Some((414, "URI Too Long")),
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::DuplicateContentLength
            | HttpError::BadContentLength(_) => Some((400, "Bad Request")),
            HttpError::BadVersion(_) => Some((505, "HTTP Version Not Supported")),
            HttpError::UnknownMethod(_) => Some((501, "Not Implemented")),
            HttpError::HeadersTooLarge | HttpError::TooManyHeaders => {
                Some((431, "Request Header Fields Too Large"))
            }
            HttpError::UnsupportedTransferEncoding => Some((501, "Not Implemented")),
            HttpError::BodyTooLarge { .. } => Some((413, "Content Too Large")),
        }
    }

    /// Stable label for the `p3p_http_parse_errors_total{kind}` counter.
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::Closed => "closed",
            HttpError::Truncated(_) => "truncated",
            HttpError::Timeout => "timeout",
            HttpError::RequestLineTooLong => "request_line_too_long",
            HttpError::BadRequestLine(_) => "bad_request_line",
            HttpError::BadVersion(_) => "bad_version",
            HttpError::UnknownMethod(_) => "unknown_method",
            HttpError::HeadersTooLarge => "headers_too_large",
            HttpError::TooManyHeaders => "too_many_headers",
            HttpError::BadHeader(_) => "bad_header",
            HttpError::DuplicateContentLength => "duplicate_content_length",
            HttpError::BadContentLength(_) => "bad_content_length",
            HttpError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Truncated(what) => write!(f, "truncated {what}"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::RequestLineTooLong => write!(f, "request line too long"),
            HttpError::BadRequestLine(l) => write!(f, "bad request line `{l}`"),
            HttpError::BadVersion(v) => write!(f, "unsupported HTTP version `{v}`"),
            HttpError::UnknownMethod(m) => write!(f, "unknown method `{m}`"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::BadHeader(l) => write!(f, "malformed header `{l}`"),
            HttpError::DuplicateContentLength => write!(f, "conflicting Content-Length headers"),
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length `{v}`"),
            HttpError::UnsupportedTransferEncoding => write!(f, "Transfer-Encoding not supported"),
            HttpError::BodyTooLarge { limit, declared } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Path without the query string, percent-decoded.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header fields with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection`
    /// header overrides).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The two methods the daemon implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// Read one full request from `reader`, incrementally and within the
/// limits. `max_body` caps `Content-Length`. Returns
/// [`HttpError::Closed`] on clean EOF before any byte of a request.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    // Request line. An interleaving of exact CRLF handling and limits:
    // read_line_limited pulls bytes up to and including `\n`.
    let line = match read_line_limited(reader, MAX_REQUEST_LINE) {
        Ok(Some(line)) => line,
        Ok(None) => return Err(HttpError::Closed),
        Err(LineError::TooLong) => return Err(HttpError::RequestLineTooLong),
        Err(LineError::Eof) => return Err(HttpError::Truncated("request line")),
        Err(LineError::Io(e)) => return Err(e.into()),
    };
    // Tolerate (skip) bare CRLF(s) before the request line, as RFC 9112
    // recommends — but only blank ones.
    let line = if line.is_empty() {
        match read_line_limited(reader, MAX_REQUEST_LINE) {
            Ok(Some(line)) => line,
            Ok(None) => return Err(HttpError::Closed),
            Err(LineError::TooLong) => return Err(HttpError::RequestLineTooLong),
            Err(LineError::Eof) => return Err(HttpError::Truncated("request line")),
            Err(LineError::Io(e)) => return Err(e.into()),
        }
    } else {
        line
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::BadVersion(v.to_string())),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(HttpError::UnknownMethod(other.to_string())),
    };

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = match read_line_limited(reader, MAX_HEADER_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => return Err(HttpError::Truncated("headers")),
            Err(LineError::TooLong) => return Err(HttpError::HeadersTooLarge),
            Err(LineError::Eof) => return Err(HttpError::Truncated("headers")),
            Err(LineError::Io(e)) => return Err(e.into()),
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(line.clone()));
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader(line.clone()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut declared: Option<usize> = None;
    for (k, v) in &headers {
        if k == "content-length" {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::BadContentLength(v.clone()))?;
            match declared {
                // A repeated identical Content-Length is tolerated (RFC
                // 9112 §6.3); disagreeing ones are a smuggling vector.
                Some(prev) if prev != n => return Err(HttpError::DuplicateContentLength),
                _ => declared = Some(n),
            }
        }
    }
    let declared = declared.unwrap_or(0);
    if declared > max_body {
        return Err(HttpError::BodyTooLarge {
            limit: max_body,
            declared,
        });
    }
    let mut body = vec![0u8; declared];
    let mut read = 0usize;
    while read < declared {
        match reader.read(&mut body[read..]) {
            Ok(0) => return Err(HttpError::Truncated("body")),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }

    let keep_alive = match headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
        Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => http11,
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        headers,
        body,
        keep_alive,
    })
}

enum LineError {
    TooLong,
    Eof,
    Io(io::Error),
}

/// Read one CRLF- (or bare-LF-) terminated line of at most `max`
/// bytes, stripping the terminator. `Ok(None)` is clean EOF before any
/// byte.
fn read_line_limited(reader: &mut impl BufRead, max: usize) -> Result<Option<String>, LineError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(LineError::Eof);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    return Ok(Some(line));
                }
                buf.push(byte[0]);
                if buf.len() > max {
                    return Err(LineError::TooLong);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(LineError::Io(e)),
        }
    }
}

/// Decode a query string into ordered `key=value` pairs (`+` is space,
/// `%XX` is percent-decoded; a bare key gets an empty value).
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Percent-decode, treating `+` as space; malformed escapes pass
/// through verbatim.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len() => {
                match std::str::from_utf8(&bytes[i + 1..i + 3])
                    .ok()
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reason phrase for the handful of statuses the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write one response. `extra_headers` are rendered verbatim after the
/// framing headers; `keep_alive` selects the `Connection` header.
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &BTreeMap<&'static str, String>,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())?;
    out.write_all(body)?;
    out.flush()
}

/// Escape a string for inclusion in a JSON body.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), DEFAULT_MAX_BODY)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /match?policy=volga&engine=sql HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/match");
        assert_eq!(req.query_param("policy"), Some("volga"));
        assert_eq!(req.query_param("engine"), Some("sql"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /install HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn percent_decoding_in_path_and_query() {
        let req = parse(b"GET /a%20b?cookie=n%3Dv&x=1+2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/a b");
        assert_eq!(req.query_param("cookie"), Some("n=v"));
        assert_eq!(req.query_param("x"), Some("1 2"));
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn leading_blank_line_is_tolerated() {
        let req = parse(b"\r\nGET /health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn malformed_request_lines_are_typed() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET  /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequestLine(_)),
                "{raw:?} -> {err:?}"
            );
            assert_eq!(err.status().unwrap().0, 400);
        }
    }

    #[test]
    fn unknown_method_and_bad_version() {
        assert!(matches!(
            parse(b"BREW /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnknownMethod(_))
        ));
        let err = parse(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadVersion(_)));
        assert_eq!(err.status().unwrap().0, 505);
        assert!(matches!(
            parse(b"GET /x FTP/1.0\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
    }

    #[test]
    fn oversized_request_line() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::RequestLineTooLong)));
    }

    #[test]
    fn oversized_and_overcounted_headers() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("Big: {}\r\n", "v".repeat(MAX_HEADER_BYTES)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::HeadersTooLarge)));

        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::TooManyHeaders)));
    }

    #[test]
    fn bad_headers_are_typed() {
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\n: empty-name\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
    }

    #[test]
    fn content_length_abuse_is_typed() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello"),
            Err(HttpError::DuplicateContentLength)
        ));
        // A repeated identical value is fine.
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.body, b"hello");
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadContentLength(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            Err(HttpError::BadContentLength(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n";
        let err = read_request(&mut BufReader::new(&raw[..]), 1024).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }));
        assert_eq!(err.status().unwrap().0, 413);
    }

    #[test]
    fn truncated_body_is_typed() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated("body"))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::Truncated("headers"))
        ));
        assert!(matches!(
            parse(b"GET /x HTT"),
            Err(HttpError::Truncated("request line"))
        ));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw: &[u8] =
            b"GET /health HTTP/1.1\r\n\r\nPOST /install HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut reader = BufReader::new(raw);
        let a = read_request(&mut reader, DEFAULT_MAX_BODY).unwrap();
        assert_eq!(a.path, "/health");
        let b = read_request(&mut reader, DEFAULT_MAX_BODY).unwrap();
        assert_eq!(b.path, "/install");
        assert_eq!(b.body, b"ok");
        assert!(matches!(
            read_request(&mut reader, DEFAULT_MAX_BODY),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn connection_header_overrides_version_default() {
        let req = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        let req = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        let mut extra = BTreeMap::new();
        extra.insert("X-P3P-Epoch", "7".to_string());
        write_response(&mut out, 200, "application/json", &extra, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-P3P-Epoch: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
