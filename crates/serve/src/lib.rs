//! Network-facing policy server daemon.
//!
//! This crate puts the paper's server-centric architecture on the
//! wire: a hand-rolled HTTP/1.1 listener (no external dependencies —
//! incremental parsing with typed errors, keep-alive, Content-Length
//! framing) in front of the concurrent matching layer from
//! `p3p-server`, with admission control and graceful drain.
//!
//! * [`http`] — the request parser and response writer, with a typed
//!   [`http::HttpError`] for every malformed-input class.
//! * [`admission`] — the bounded connection queue and per-endpoint
//!   in-flight caps behind 429 + `Retry-After` backpressure.
//! * [`daemon`] — the [`daemon::Daemon`] itself: accept thread,
//!   worker pool over `MatchPool` snapshots, endpoint handlers, and
//!   the drain protocol.
//! * [`client`] — a minimal blocking client the tests and the load
//!   generator share.
//!
//! The `p3p-serverd` binary wraps [`daemon::Daemon`] with a CLI,
//! corpus bootstrap, and SIGTERM → drain handling.

pub mod admission;
pub mod client;
pub mod daemon;
pub mod http;

pub use admission::{Admission, Endpoint, EndpointLimits, Rejection};
pub use client::{Client, ClientResponse};
pub use daemon::{Daemon, DaemonStats, ServeConfig};
pub use http::HttpError;
