//! The long-running policy-server daemon: a worker pool over
//! [`MatchPool`] snapshots behind a hand-rolled HTTP/1.1 listener.
//!
//! Node shape: one accept thread feeds accepted connections through
//! the bounded [`Admission`] queue to `workers` threads, each of which
//! owns one connection at a time and serves keep-alive requests off it
//! until the peer closes, the idle timeout fires, or a drain begins.
//! Matching runs against the shared [`MatchPool`] snapshot — zero-copy
//! and epoch-pinned, so every response carries the catalog epoch it
//! was answered under (`X-P3P-Epoch` header and `"epoch"` body field).
//! Installs take the primary's lock and refresh the pool, bumping the
//! epoch that subsequent responses report.
//!
//! Endpoints:
//!
//! * `POST /install` — body is P3P policy XML; shreds and installs.
//! * `POST /match?policy=NAME[&engine=E]` — body is an APPEL ruleset;
//!   `uri=` / `cookie=` select the other target forms.
//! * `POST /match_corpus[?engine=E&shards=K]` — body is an APPEL
//!   ruleset; sweeps every installed policy, one pinned epoch.
//! * `GET /metrics` — the shared registry's Prometheus text page,
//!   byte-identical to [`metrics::render_text`].
//! * `GET /health` — liveness, policy count, epoch, drain state.
//!
//! `/metrics` and `/health` bypass admission control and record no
//! request metrics: observability must stay readable exactly when the
//! daemon is saturated, and the `/metrics` body stays byte-identical
//! to the registry render at the instant of the request.
//!
//! Graceful drain ([`Daemon::begin_drain`], SIGTERM in `p3p-serverd`):
//! the listener closes (new connections are refused by the OS), queued
//! and in-flight requests complete and are answered with
//! `Connection: close`, the metrics snapshot is flushed, and
//! [`Daemon::join`] returns the final stats — no verdict in flight is
//! lost.

use crate::admission::{Admission, Endpoint, EndpointLimits, Rejection};
use crate::http::{json_escape, read_request, write_response, Method, Request, DEFAULT_MAX_BODY};
use p3p_appel::model::Ruleset;
use p3p_server::concurrent::{MatchPool, SharedServer};
use p3p_server::{EngineKind, MatchOutcome, PolicyServer, ServerError, Target};
use p3p_telemetry::metrics;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it, accepts answer
    /// 429 immediately.
    pub queue_depth: usize,
    /// Per-endpoint in-flight caps.
    pub limits: EndpointLimits,
    /// `Content-Length` cap.
    pub max_body_bytes: usize,
    /// Budget for reading one request once its first byte arrived;
    /// a peer stalling longer gets 408.
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection may hold a worker.
    pub keep_alive_timeout: Duration,
    /// Shard count for `/match_corpus` when the request does not pass
    /// `shards=`; 0 means one shard per core.
    pub default_shards: usize,
    /// Artificial per-request handler delay — load/drain drills use it
    /// to keep requests in flight deterministically. Zero in service.
    pub delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            limits: EndpointLimits::default(),
            max_body_bytes: DEFAULT_MAX_BODY,
            read_timeout: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(30),
            default_shards: 0,
            delay_ms: 0,
        }
    }
}

/// Final tallies returned by [`Daemon::join`].
#[derive(Debug, Clone, Default)]
pub struct DaemonStats {
    /// Connections accepted (including ones bounced with 429).
    pub connections: u64,
    /// Requests answered with any status.
    pub served: u64,
    /// Requests answered 429 (queue-full bounces and per-endpoint
    /// concurrency rejections).
    pub rejected: u64,
    /// Requests answered 200 after the drain began — the in-flight
    /// work a graceful shutdown completed instead of dropping.
    pub drained_in_flight: u64,
}

struct Inner {
    shared: SharedServer,
    pool: MatchPool,
    admission: Arc<Admission>,
    config: ServeConfig,
    /// Live copy of `config.delay_ms` — drills retune it at runtime
    /// ([`Daemon::set_delay_ms`]) to park requests in flight.
    delay_ms: AtomicU64,
    draining: AtomicBool,
    connections: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    drained_in_flight: AtomicU64,
}

/// A running daemon. Dropping it without [`Daemon::join`] aborts the
/// threads with the process; call [`Daemon::begin_drain`] + `join` for
/// a graceful stop.
pub struct Daemon {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Poll cadence for noticing drain while blocked on idle sockets or
/// an empty queue.
const POLL: Duration = Duration::from_millis(25);

/// Register and describe every `p3p_http_*` family once, at bind, so
/// `/metrics` renders them (with real HELP text) before first traffic.
fn describe_metrics() {
    metrics::describe(
        "p3p_http_requests_total",
        "HTTP requests answered, by endpoint and status",
    );
    metrics::describe(
        "p3p_http_rejected_total",
        "Requests turned away by admission control (429), by reason",
    );
    metrics::describe(
        "p3p_http_queue_depth",
        "Accepted connections waiting for a worker",
    );
    metrics::describe(
        "p3p_http_in_flight",
        "Requests currently being processed, by endpoint",
    );
    metrics::describe(
        "p3p_http_request_us",
        "Request service time in microseconds, by endpoint",
    );
    metrics::describe(
        "p3p_http_parse_errors_total",
        "Malformed requests rejected by the HTTP parser, by kind",
    );
    metrics::describe(
        "p3p_http_connections_total",
        "TCP connections accepted by the listener",
    );
    metrics::describe(
        "p3p_http_draining",
        "1 while the daemon is draining, else 0",
    );
    metrics::counter_with("p3p_http_rejected_total", &[("reason", "queue_full")]);
    metrics::counter_with("p3p_http_rejected_total", &[("reason", "concurrency")]);
    metrics::counter_with(
        "p3p_http_parse_errors_total",
        &[("kind", "bad_request_line")],
    );
    metrics::gauge("p3p_http_queue_depth");
    metrics::counter("p3p_http_connections_total");
    metrics::gauge("p3p_http_draining").set(0);
    for endpoint in [Endpoint::Install, Endpoint::Match, Endpoint::MatchCorpus] {
        metrics::counter_with(
            "p3p_http_requests_total",
            &[("endpoint", endpoint.label()), ("status", "200")],
        );
        metrics::histogram_with("p3p_http_request_us", &[("endpoint", endpoint.label())]);
        metrics::gauge_with("p3p_http_in_flight", &[("endpoint", endpoint.label())]);
    }
}

impl Daemon {
    /// Bind `addr` (e.g. `127.0.0.1:0`), take ownership of `server` as
    /// the primary, and start the accept and worker threads.
    pub fn bind(addr: &str, server: PolicyServer, config: ServeConfig) -> io::Result<Daemon> {
        describe_metrics();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = SharedServer::new(server);
        let pool = MatchPool::new(&shared);
        let inner = Arc::new(Inner {
            admission: Admission::new(config.queue_depth, config.limits.clone()),
            shared,
            pool,
            delay_ms: AtomicU64::new(config.delay_ms),
            config,
            draining: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            drained_in_flight: AtomicU64::new(0),
        });

        let accept_handle = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("p3p-accept".into())
                .spawn(move || accept_loop(listener, &inner))?
        };
        let worker_handles = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("p3p-http-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Daemon {
            inner,
            addr,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The primary's current catalog epoch.
    pub fn catalog_epoch(&self) -> u64 {
        self.inner.shared.catalog_epoch()
    }

    /// Begin a graceful drain: stop accepting, let queued and
    /// in-flight requests finish. Idempotent; returns immediately —
    /// pair with [`Daemon::join`].
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        metrics::gauge("p3p_http_draining").set(1);
    }

    /// Whether a drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Retune the artificial per-request handler delay at runtime.
    /// Load and drain drills use this to park requests in flight
    /// deterministically; zero restores normal service.
    pub fn set_delay_ms(&self, delay_ms: u64) {
        self.inner.delay_ms.store(delay_ms, Ordering::Relaxed);
    }

    /// Wait for the accept thread and every worker to finish (only
    /// returns after [`Daemon::begin_drain`]), then return the final
    /// stats. The metrics registry holds the flushed final state.
    pub fn join(mut self) -> DaemonStats {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        metrics::gauge("p3p_http_queue_depth").set(0);
        DaemonStats {
            connections: self.inner.connections.load(Ordering::Relaxed),
            served: self.inner.served.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            drained_in_flight: self.inner.drained_in_flight.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(listener: TcpListener, inner: &Inner) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.connections.fetch_add(1, Ordering::Relaxed);
                metrics::counter("p3p_http_connections_total").inc();
                let _ = stream.set_nodelay(true);
                if let Err(stream) = inner.admission.enqueue(stream) {
                    // Queue full: answer 429 on the spot and close.
                    inner.rejected.fetch_add(1, Ordering::Relaxed);
                    respond_rejection(&stream, Rejection::QueueFull);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Listener drops here: the OS refuses new connections from this
    // point on. Workers drain what was already accepted.
    inner.admission.close();
}

fn worker_loop(inner: &Inner) {
    while let Some(stream) = inner.admission.dequeue(POLL) {
        handle_connection(stream, inner);
    }
}

/// Write a bare 429 with `Retry-After` on a stream (used at accept
/// time for queue-full bounces, before any request is parsed).
fn respond_rejection(mut stream: &TcpStream, rejection: Rejection) {
    let mut extra = BTreeMap::new();
    extra.insert("Retry-After", rejection.retry_after_secs().to_string());
    let body = format!(
        "{{\"error\": \"overloaded\", \"reason\": \"{}\"}}\n",
        rejection.reason()
    );
    let _ = write_response(
        &mut stream,
        429,
        "application/json",
        &extra,
        body.as_bytes(),
        false,
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serve keep-alive requests off one connection until close, idle
/// timeout, parse failure, or drain.
fn handle_connection(stream: TcpStream, inner: &Inner) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    loop {
        // Wait for the first byte of the next request on a short poll
        // so drain is noticed promptly; a clean close or idle timeout
        // ends the connection without a response.
        let idle_start = Instant::now();
        let _ = stream.set_read_timeout(Some(POLL));
        let got_data = loop {
            match reader.fill_buf() {
                Ok([]) => break false,
                Ok(_) => break true,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if inner.draining.load(Ordering::SeqCst) {
                        break false;
                    }
                    if idle_start.elapsed() > inner.config.keep_alive_timeout {
                        break false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break false,
            }
        };
        if !got_data {
            return;
        }

        // The request has begun: give it the full read budget.
        let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
        let started = Instant::now();
        match read_request(&mut reader, inner.config.max_body_bytes) {
            Ok(request) => {
                let keep_alive = serve_request(&stream, inner, &request, started);
                if !keep_alive {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
            Err(err) => {
                metrics::counter_with("p3p_http_parse_errors_total", &[("kind", err.kind())]).inc();
                if let Some((status, _reason)) = err.status() {
                    inner.served.fetch_add(1, Ordering::Relaxed);
                    let body = format!(
                        "{{\"error\": \"{}\", \"kind\": \"{}\"}}\n",
                        json_escape(&err.to_string()),
                        err.kind()
                    );
                    let mut out = &stream;
                    let _ = write_response(
                        &mut out,
                        status,
                        "application/json",
                        &BTreeMap::new(),
                        body.as_bytes(),
                        false,
                    );
                }
                // Parse errors are never safe to continue past: the
                // connection's framing is unknown from here.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        }
    }
}

/// Route, admit, handle, respond. Returns whether to keep the
/// connection alive.
fn serve_request(
    mut stream: &TcpStream,
    inner: &Inner,
    request: &Request,
    started: Instant,
) -> bool {
    let draining = inner.draining.load(Ordering::SeqCst);
    let keep_alive = request.keep_alive && !draining;

    let endpoint = match route(request) {
        Ok(endpoint) => endpoint,
        Err((status, message)) => {
            inner.served.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\": \"{}\"}}\n", json_escape(message));
            let _ = write_response(
                &mut stream,
                status,
                "application/json",
                &BTreeMap::new(),
                body.as_bytes(),
                keep_alive,
            );
            return keep_alive;
        }
    };

    // Observability endpoints bypass admission and request metrics:
    // they must answer while the daemon is saturated, and /metrics
    // must stay byte-identical to the registry render.
    if matches!(endpoint, Endpoint::Metrics | Endpoint::Health) {
        inner.served.fetch_add(1, Ordering::Relaxed);
        let response = match endpoint {
            Endpoint::Metrics => Response::text(200, metrics::render_text()),
            _ => handle_health(inner),
        };
        let _ = response.write(&mut stream, keep_alive);
        return keep_alive;
    }

    let _guard = match inner.admission.try_enter(endpoint) {
        Ok(guard) => guard,
        Err(rejection) => {
            inner.served.fetch_add(1, Ordering::Relaxed);
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            record_request(endpoint, 429, started);
            let mut extra = BTreeMap::new();
            extra.insert("Retry-After", rejection.retry_after_secs().to_string());
            let body = format!(
                "{{\"error\": \"overloaded\", \"reason\": \"{}\", \"endpoint\": \"{}\"}}\n",
                rejection.reason(),
                endpoint.label()
            );
            let _ = write_response(
                &mut stream,
                429,
                "application/json",
                &extra,
                body.as_bytes(),
                keep_alive,
            );
            return keep_alive;
        }
    };

    let delay_ms = inner.delay_ms.load(Ordering::Relaxed);
    if delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(delay_ms));
    }

    let response = match endpoint {
        Endpoint::Install => handle_install(inner, request),
        Endpoint::Match => handle_match(inner, request),
        Endpoint::MatchCorpus => handle_match_corpus(inner, request),
        Endpoint::Metrics | Endpoint::Health => unreachable!("handled above"),
    };

    inner.served.fetch_add(1, Ordering::Relaxed);
    // Re-sample: a drain that began while this request was being
    // handled still counts it as completed-in-flight, and the
    // connection closes after the response instead of idling.
    let draining = draining || inner.draining.load(Ordering::SeqCst);
    let keep_alive = keep_alive && !draining;
    if draining && response.status == 200 {
        inner.drained_in_flight.fetch_add(1, Ordering::Relaxed);
    }
    record_request(endpoint, response.status, started);
    let _ = response.write(&mut stream, keep_alive);
    keep_alive
}

fn record_request(endpoint: Endpoint, status: u16, started: Instant) {
    metrics::counter_with(
        "p3p_http_requests_total",
        &[
            ("endpoint", endpoint.label()),
            ("status", status_label(status)),
        ],
    )
    .inc();
    metrics::histogram_with("p3p_http_request_us", &[("endpoint", endpoint.label())])
        .observe_duration(started.elapsed());
}

/// Static status labels: metric label sets want `&'static str`.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        409 => "409",
        422 => "422",
        429 => "429",
        500 => "500",
        501 => "501",
        _ => "other",
    }
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    extra: BTreeMap<&'static str, String>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: BTreeMap::new(),
        }
    }

    fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            extra: BTreeMap::new(),
        }
    }

    fn with_epoch(mut self, epoch: u64) -> Response {
        self.extra.insert("X-P3P-Epoch", epoch.to_string());
        self
    }

    fn write(&self, out: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write_response(
            out,
            self.status,
            self.content_type,
            &self.extra,
            &self.body,
            keep_alive,
        )
    }
}

/// Map a path+method to an endpoint, or a 404/405 error.
fn route(request: &Request) -> Result<Endpoint, (u16, &'static str)> {
    match (request.method, request.path.as_str()) {
        (Method::Post, "/install") => Ok(Endpoint::Install),
        (Method::Post, "/match") => Ok(Endpoint::Match),
        (Method::Post, "/match_corpus") => Ok(Endpoint::MatchCorpus),
        (Method::Get, "/metrics") => Ok(Endpoint::Metrics),
        (Method::Get, "/health") => Ok(Endpoint::Health),
        (_, "/install" | "/match" | "/match_corpus" | "/metrics" | "/health") => {
            Err((405, "method not allowed on this path"))
        }
        _ => Err((404, "no such endpoint")),
    }
}

/// Status code for a [`ServerError`] leaking out of a handler.
fn status_of(err: &ServerError) -> u16 {
    match err {
        ServerError::UnknownPolicy(_) | ServerError::NoApplicablePolicy(_) => 404,
        ServerError::Install(_) => 409,
        ServerError::Policy(_) | ServerError::Appel(_) | ServerError::XQuery(_) => 422,
        ServerError::Unsupported(_) => 501,
        ServerError::Db(_) => 500,
    }
}

fn error_response(err: &ServerError) -> Response {
    Response::json(
        status_of(err),
        format!("{{\"error\": \"{}\"}}\n", json_escape(&err.to_string())),
    )
}

fn handle_install(inner: &Inner, request: &Request) -> Response {
    let xml = match std::str::from_utf8(&request.body) {
        Ok(xml) => xml,
        Err(_) => {
            return Response::json(
                422,
                "{\"error\": \"policy XML is not valid UTF-8\"}\n".to_string(),
            )
        }
    };
    let installed = inner.shared.with(|server| {
        let id = server.install_policy_xml(xml)?;
        Ok::<(i64, u64), ServerError>((id, server.catalog_epoch()))
    });
    match installed {
        Ok((policy_id, epoch)) => {
            // New state becomes visible to match traffic from here on.
            inner.pool.refresh(&inner.shared);
            Response::json(
                200,
                format!("{{\"policy_id\": {policy_id}, \"epoch\": {epoch}}}\n"),
            )
            .with_epoch(epoch)
        }
        Err(err) => error_response(&err),
    }
}

/// Parse `engine=` (defaulting to the paper's APPEL→SQL engine).
fn parse_engine(request: &Request) -> Result<EngineKind, Response> {
    match request.query_param("engine") {
        None => Ok(EngineKind::Sql),
        Some("sql") => Ok(EngineKind::Sql),
        Some("sql_generic") => Ok(EngineKind::SqlGeneric),
        Some("xquery_xtable") => Ok(EngineKind::XQueryXTable),
        Some("xquery_native") => Ok(EngineKind::XQueryNative),
        Some("native") => Ok(EngineKind::Native),
        Some(other) => Err(Response::json(
            400,
            format!(
                "{{\"error\": \"unknown engine `{}` (want sql|sql_generic|xquery_xtable|xquery_native|native)\"}}\n",
                json_escape(other)
            ),
        )),
    }
}

fn parse_ruleset(request: &Request) -> Result<Ruleset, Response> {
    let xml = std::str::from_utf8(&request.body).map_err(|_| {
        Response::json(
            422,
            "{\"error\": \"ruleset XML is not valid UTF-8\"}\n".to_string(),
        )
    })?;
    Ruleset::parse(xml).map_err(|e| {
        Response::json(
            422,
            format!(
                "{{\"error\": \"ruleset does not parse: {}\"}}\n",
                json_escape(&e.to_string())
            ),
        )
    })
}

fn outcome_json(outcome: &MatchOutcome) -> String {
    format!(
        "{{\"behavior\": \"{}\", \"fired_rule\": {}, \"epoch\": {}, \"verdict_cached\": {}, \
         \"translation_cached\": {}, \"convert_us\": {}, \"query_us\": {}}}\n",
        json_escape(outcome.verdict.behavior.as_str()),
        outcome
            .verdict
            .fired_rule
            .map_or("null".to_string(), |i| i.to_string()),
        outcome.epoch,
        outcome.verdict_cached,
        outcome.cached,
        outcome.convert.as_micros(),
        outcome.query.as_micros(),
    )
}

fn handle_match(inner: &Inner, request: &Request) -> Response {
    let engine = match parse_engine(request) {
        Ok(engine) => engine,
        Err(response) => return response,
    };
    let ruleset = match parse_ruleset(request) {
        Ok(ruleset) => ruleset,
        Err(response) => return response,
    };
    let target = if let Some(name) = request.query_param("policy") {
        Target::Policy(name)
    } else if let Some(uri) = request.query_param("uri") {
        Target::Uri(uri)
    } else if let Some(cookie) = request.query_param("cookie") {
        Target::Cookie(cookie)
    } else {
        return Response::json(
            400,
            "{\"error\": \"missing target: pass policy=, uri=, or cookie=\"}\n".to_string(),
        );
    };
    match inner.pool.match_preference(&ruleset, target, engine) {
        Ok(outcome) => {
            let epoch = outcome.epoch;
            Response::json(200, outcome_json(&outcome)).with_epoch(epoch)
        }
        Err(err) => error_response(&err),
    }
}

fn handle_match_corpus(inner: &Inner, request: &Request) -> Response {
    let engine = match parse_engine(request) {
        Ok(engine) => engine,
        Err(response) => return response,
    };
    let ruleset = match parse_ruleset(request) {
        Ok(ruleset) => ruleset,
        Err(response) => return response,
    };
    let shards = match request.query_param("shards") {
        None => default_shards(inner),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Response::json(
                    400,
                    format!(
                        "{{\"error\": \"bad shards value `{}`\"}}\n",
                        json_escape(raw)
                    ),
                )
            }
        },
    };
    match inner.pool.match_corpus_pinned(&ruleset, engine, shards) {
        Ok((epoch, verdicts)) => {
            let mut body = format!(
                "{{\"epoch\": {epoch}, \"policies\": {}, \"verdicts\": [",
                verdicts.len()
            );
            for (i, (name, verdict)) in verdicts.iter().enumerate() {
                if i > 0 {
                    body.push_str(", ");
                }
                body.push_str(&format!(
                    "{{\"name\": \"{}\", \"behavior\": \"{}\", \"fired_rule\": {}}}",
                    json_escape(name),
                    json_escape(verdict.behavior.as_str()),
                    verdict
                        .fired_rule
                        .map_or("null".to_string(), |i| i.to_string()),
                ));
            }
            body.push_str("]}\n");
            Response::json(200, body).with_epoch(epoch)
        }
        Err(err) => error_response(&err),
    }
}

fn default_shards(inner: &Inner) -> usize {
    if inner.config.default_shards > 0 {
        inner.config.default_shards
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }
}

fn handle_health(inner: &Inner) -> Response {
    let epoch = inner.pool.snapshot_epoch();
    let policies = inner.shared.with(|server| server.policy_names().len());
    let draining = inner.draining.load(Ordering::SeqCst);
    Response::json(
        200,
        format!(
            "{{\"status\": \"{}\", \"policies\": {policies}, \"epoch\": {epoch}, \
             \"workers\": {}, \"queue_depth\": {}}}\n",
            if draining { "draining" } else { "ok" },
            inner.config.workers,
            inner.admission.depth(),
        ),
    )
    .with_epoch(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use p3p_policy::model::volga_policy;
    use p3p_workload::Sensitivity;

    fn daemon_with_volga(config: ServeConfig) -> Daemon {
        let mut server = PolicyServer::new();
        server.install_policy(&volga_policy()).unwrap();
        Daemon::bind("127.0.0.1:0", server, config).expect("bind daemon")
    }

    #[test]
    fn match_and_health_round_trip() {
        let daemon = daemon_with_volga(ServeConfig::default());
        let mut client = Client::connect(daemon.local_addr()).unwrap();

        let ruleset = Sensitivity::Medium.ruleset().to_xml();
        let response = client
            .request("POST", "/match?policy=volga&engine=sql", ruleset.as_bytes())
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body_string());
        assert!(response.body_string().contains("\"behavior\""));
        assert_eq!(response.header("x-p3p-epoch"), Some("1"));

        let health = client.request("GET", "/health", b"").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_string().contains("\"status\": \"ok\""));
        assert!(health.body_string().contains("\"policies\": 1"));

        daemon.begin_drain();
        daemon.join();
    }

    #[test]
    fn install_bumps_epoch_and_becomes_matchable() {
        let daemon = daemon_with_volga(ServeConfig::default());
        let mut client = Client::connect(daemon.local_addr()).unwrap();

        let mut second = volga_policy();
        second.name = "second".to_string();
        let response = client
            .request("POST", "/install", second.to_xml().as_bytes())
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body_string());
        assert!(response.body_string().contains("\"epoch\": 2"));

        let ruleset = Sensitivity::Medium.ruleset().to_xml();
        let matched = client
            .request("POST", "/match?policy=second", ruleset.as_bytes())
            .unwrap();
        assert_eq!(matched.status, 200, "{}", matched.body_string());
        assert_eq!(matched.header("x-p3p-epoch"), Some("2"));

        // Install of a duplicate name conflicts.
        let duplicate = client
            .request("POST", "/install", second.to_xml().as_bytes())
            .unwrap();
        assert_eq!(duplicate.status, 409, "{}", duplicate.body_string());

        daemon.begin_drain();
        daemon.join();
    }

    #[test]
    fn match_errors_are_typed() {
        let daemon = daemon_with_volga(ServeConfig::default());
        let mut client = Client::connect(daemon.local_addr()).unwrap();
        let ruleset = Sensitivity::Medium.ruleset().to_xml();

        let unknown = client
            .request("POST", "/match?policy=missing", ruleset.as_bytes())
            .unwrap();
        assert_eq!(unknown.status, 404);

        let bad_engine = client
            .request(
                "POST",
                "/match?policy=volga&engine=warp",
                ruleset.as_bytes(),
            )
            .unwrap();
        assert_eq!(bad_engine.status, 400);

        let no_target = client
            .request("POST", "/match", ruleset.as_bytes())
            .unwrap();
        assert_eq!(no_target.status, 400);

        let bad_ruleset = client
            .request("POST", "/match?policy=volga", b"<not-appel/>")
            .unwrap();
        assert_eq!(bad_ruleset.status, 422);

        let wrong_method = client.request("GET", "/match", b"").unwrap();
        assert_eq!(wrong_method.status, 405);

        let nowhere = client.request("GET", "/nowhere", b"").unwrap();
        assert_eq!(nowhere.status, 404);

        daemon.begin_drain();
        daemon.join();
    }

    #[test]
    fn corpus_sweep_reports_one_pinned_epoch() {
        let mut server = PolicyServer::new();
        for policy in p3p_workload::corpus_n(7, 12) {
            server.install_policy(&policy).unwrap();
        }
        let daemon = Daemon::bind("127.0.0.1:0", server, ServeConfig::default()).unwrap();
        let mut client = Client::connect(daemon.local_addr()).unwrap();
        let ruleset = Sensitivity::High.ruleset().to_xml();
        let response = client
            .request(
                "POST",
                "/match_corpus?engine=sql&shards=3",
                ruleset.as_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body_string());
        let body = response.body_string();
        assert!(body.contains("\"policies\": 12"));
        assert!(body.contains("\"epoch\": 12"));
        assert_eq!(response.header("x-p3p-epoch"), Some("12"));
        daemon.begin_drain();
        daemon.join();
    }

    #[test]
    fn programmatic_drain_completes_in_flight_and_refuses_new() {
        let daemon = daemon_with_volga(ServeConfig {
            delay_ms: 120,
            ..ServeConfig::default()
        });
        let addr = daemon.local_addr();
        let ruleset = Sensitivity::Medium.ruleset().to_xml();

        // Put a slow request in flight, then drain while it runs.
        let in_flight = std::thread::spawn({
            let ruleset = ruleset.clone();
            move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .request("POST", "/match?policy=volga", ruleset.as_bytes())
                    .unwrap()
            }
        });
        std::thread::sleep(Duration::from_millis(40));
        daemon.begin_drain();

        let response = in_flight.join().unwrap();
        assert_eq!(response.status, 200, "in-flight request must complete");

        let stats = daemon.join();
        assert!(stats.drained_in_flight >= 1, "{stats:?}");
        // With the listener gone, new connections are refused.
        assert!(TcpStream::connect(addr).is_err());
    }
}
