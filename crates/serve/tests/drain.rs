//! Graceful-drain drill against the real `p3p-serverd` binary:
//! SIGTERM lands mid-load, every in-flight request completes with
//! 200, new connections are refused, no verdict is lost, and the
//! process exits 0.

use p3p_policy::model::volga_policy;
use p3p_serve::client::Client;
use p3p_workload::Sensitivity;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spawn the daemon with a per-request delay (so requests stay in
/// flight long enough for the SIGTERM to land among them) and parse
/// its readiness line for the bound port.
fn spawn_serverd(extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_p3p-serverd"))
        .args(["--bind", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn p3p-serverd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serverd exited before readiness")
            .expect("read serverd stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse::<SocketAddr>().expect("parse addr");
        }
    };
    (child, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM failed");
}

/// Install the reference policy over HTTP so load threads have a
/// known target name.
fn install_volga(addr: SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .request("POST", "/install", volga_policy().to_xml().as_bytes())
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_string());
}

#[test]
fn sigterm_mid_load_drains_without_losing_a_verdict() {
    let (mut child, addr) = spawn_serverd(&["--delay-ms", "120", "--workers", "4"]);
    install_volga(addr);
    let ruleset = Arc::new(Sensitivity::Medium.ruleset().to_xml());

    // Steady closed-loop load from 4 clients. Every response that
    // comes back must be a complete 200 with a verdict — a drain is
    // allowed to refuse NEW connections, never to corrupt or drop an
    // accepted request.
    let completed = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let ruleset = ruleset.clone();
            let completed = completed.clone();
            let refused = refused.clone();
            std::thread::spawn(move || {
                let path = format!("/match?policy=volga&engine={}", ["sql", "native"][i % 2]);
                let deadline = Instant::now() + Duration::from_secs(10);
                while Instant::now() < deadline {
                    let Ok(mut client) = Client::connect_timeout(addr, Duration::from_secs(5))
                    else {
                        // Post-drain: the listener is gone. Expected.
                        refused.fetch_add(1, Ordering::Relaxed);
                        return;
                    };
                    match client.request("POST", &path, ruleset.as_bytes()) {
                        Ok(response) => {
                            assert_eq!(
                                response.status,
                                200,
                                "mid-drain response degraded: {}",
                                response.body_string()
                            );
                            assert!(
                                response.body_string().contains("\"behavior\""),
                                "truncated verdict body"
                            );
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Connection refused/reset after drain
                            // began — only acceptable once the
                            // listener is down, and never with a
                            // request already accepted (the assert
                            // above covers those).
                            refused.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    // Let the load establish, then deliver SIGTERM mid-flight.
    std::thread::sleep(Duration::from_millis(400));
    sigterm(&child);

    for thread in threads {
        thread.join().unwrap();
    }

    // The process must exit 0 of its own accord, promptly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "serverd did not exit after drain"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "drain must exit 0, got {status:?}");

    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "load never got going before the drain"
    );
    // New connections are refused once drained.
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "listener still accepting after drain"
    );
}

#[test]
fn drain_flushes_metrics_snapshot() {
    let dir = std::env::temp_dir().join(format!("p3p-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("final-metrics.json");
    let (mut child, addr) = spawn_serverd(&["--metrics-out", metrics_path.to_str().unwrap()]);

    // Serve a little traffic so the flushed snapshot has content.
    install_volga(addr);
    let ruleset = Sensitivity::High.ruleset().to_xml();
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..3 {
        let response = client
            .request("POST", "/match?policy=volga", ruleset.as_bytes())
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body_string());
    }
    drop(client);

    sigterm(&child);
    let status = child.wait().expect("wait serverd");
    assert!(status.success(), "exit status {status:?}");

    let snapshot = std::fs::read_to_string(&metrics_path).expect("flushed metrics file");
    assert!(
        snapshot.contains("p3p_http_requests_total"),
        "snapshot missing request counters: {snapshot}"
    );
    assert!(snapshot.contains("p3p_http_draining"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_tears_down_the_listener() {
    // In-process contract check: before drain /health answers ok; the
    // moment join() returns, the socket is gone for new connections.
    use p3p_serve::daemon::{Daemon, ServeConfig};
    use p3p_server::PolicyServer;

    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    let daemon = Daemon::bind("127.0.0.1:0", server, ServeConfig::default()).unwrap();
    let addr = daemon.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let health = client.request("GET", "/health", b"").unwrap();
    assert!(health.body_string().contains("\"status\": \"ok\""));

    daemon.begin_drain();
    let stats = daemon.join();
    assert_eq!(stats.connections, 1);
    assert!(std::net::TcpStream::connect(addr).is_err());
}
