//! Backpressure integration test: saturate a deliberately tiny daemon
//! from many client threads and check that overload is answered with
//! 429 + `Retry-After` (never an error, a hang, or a dropped byte),
//! that the admission metrics move, and that every accepted request
//! still answers correctly.

use p3p_policy::model::volga_policy;
use p3p_serve::client::Client;
use p3p_serve::daemon::{Daemon, ServeConfig};
use p3p_serve::EndpointLimits;
use p3p_server::PolicyServer;
use p3p_telemetry::metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn saturation_yields_429s_not_errors() {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    // One slow worker, a 2-deep queue, and a /match cap of 1: with 8
    // threads hammering, most requests MUST be turned away.
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        server,
        ServeConfig {
            workers: 2,
            queue_depth: 2,
            delay_ms: 40,
            limits: EndpointLimits {
                match_: 1,
                ..EndpointLimits::default()
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    let rejected_queue_before =
        metrics::counter_with("p3p_http_rejected_total", &[("reason", "queue_full")]).get();
    let rejected_conc_before =
        metrics::counter_with("p3p_http_rejected_total", &[("reason", "concurrency")]).get();

    let ruleset = Arc::new(p3p_workload::Sensitivity::Medium.ruleset().to_xml());
    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let retry_after_seen = Arc::new(AtomicU64::new(0));
    let max_queue_depth = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let ruleset = ruleset.clone();
            let ok = ok.clone();
            let rejected = rejected.clone();
            let retry_after_seen = retry_after_seen.clone();
            let max_queue_depth = max_queue_depth.clone();
            std::thread::spawn(move || {
                for _ in 0..12 {
                    // Fresh connection per attempt so queue-full
                    // bounces are exercised too, not just the
                    // per-endpoint cap.
                    let Ok(mut client) = Client::connect_timeout(addr, Duration::from_secs(10))
                    else {
                        // Connect refused/reset under hard overload
                        // still counts as backpressure, not failure.
                        rejected.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    match client.request("POST", "/match?policy=volga", ruleset.as_bytes()) {
                        Ok(response) if response.status == 200 => {
                            let body = response.body_string();
                            assert!(
                                body.contains("\"behavior\""),
                                "accepted request must carry a verdict: {body}"
                            );
                            assert!(
                                response.header("x-p3p-epoch").is_some(),
                                "accepted request must carry its epoch"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(response) if response.status == 429 => {
                            if response.header("retry-after").is_some() {
                                retry_after_seen.fetch_add(1, Ordering::Relaxed);
                            }
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(response) => {
                            panic!(
                                "unexpected status {} under load: {}",
                                response.status,
                                response.body_string()
                            );
                        }
                        Err(_) => {
                            // A bounced connection the client raced:
                            // acceptable, counted as rejection.
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let depth = metrics::gauge("p3p_http_queue_depth").get().max(0) as u64;
                    max_queue_depth.fetch_max(depth, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }

    let ok = ok.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert!(ok > 0, "some requests must get through");
    assert!(
        rejected > 0,
        "8 threads against cap 1 must trip backpressure (ok={ok})"
    );
    assert!(
        retry_after_seen.load(Ordering::Relaxed) > 0,
        "429s must carry Retry-After"
    );

    // The rejection counters moved.
    let rejected_queue_after =
        metrics::counter_with("p3p_http_rejected_total", &[("reason", "queue_full")]).get();
    let rejected_conc_after =
        metrics::counter_with("p3p_http_rejected_total", &[("reason", "concurrency")]).get();
    let counted = (rejected_queue_after - rejected_queue_before)
        + (rejected_conc_after - rejected_conc_before);
    assert!(
        counted > 0,
        "p3p_http_rejected_total must move under saturation"
    );

    // After the storm the daemon is healthy and an accepted request
    // still answers correctly.
    let mut client = Client::connect(addr).unwrap();
    let health = client.request("GET", "/health", b"").unwrap();
    assert_eq!(health.status, 200);
    let stats = {
        daemon.begin_drain();
        daemon.join()
    };
    assert!(stats.served >= ok, "{stats:?}");
    assert!(stats.rejected > 0, "{stats:?}");
}

#[test]
fn queue_depth_gauge_tracks_waiting_connections() {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    // A single worker stalled 200ms per request guarantees arrivals
    // pile up in the queue where the gauge can see them.
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        server,
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            delay_ms: 200,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();
    let ruleset = Arc::new(p3p_workload::Sensitivity::Low.ruleset().to_xml());

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let ruleset = ruleset.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
                client
                    .request("POST", "/match?policy=volga", ruleset.as_bytes())
                    .map(|r| r.status)
            })
        })
        .collect();

    // While the worker grinds, the gauge must report queued peers.
    let mut peak = 0i64;
    for _ in 0..40 {
        peak = peak.max(metrics::gauge("p3p_http_queue_depth").get());
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(peak >= 1, "queue-depth gauge never moved (peak {peak})");

    for client in clients {
        let status = client.join().unwrap().unwrap();
        assert!(
            status == 200 || status == 429,
            "queued request answered {status}"
        );
    }
    daemon.begin_drain();
    daemon.join();
}
