//! HTTP parser conformance battery, driven over real sockets against
//! a live daemon: every malformed-input class must come back as its
//! typed 4xx/5xx — the server never panics, never hangs, and stays
//! serviceable for the next connection.

use p3p_policy::model::volga_policy;
use p3p_serve::client::Client;
use p3p_serve::daemon::{Daemon, ServeConfig};
use p3p_server::PolicyServer;
use p3p_workload::Sensitivity;
use std::net::SocketAddr;
use std::time::Duration;

fn spawn_daemon(config: ServeConfig) -> Daemon {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    Daemon::bind("127.0.0.1:0", server, config).expect("bind daemon")
}

fn default_daemon() -> Daemon {
    spawn_daemon(ServeConfig::default())
}

/// Send raw bytes, expect exactly `status` back, and verify the
/// server still answers a well-formed request on a fresh connection.
fn assert_raw_status(daemon: &Daemon, raw: &[u8], status: u16, case: &str) {
    let mut client = Client::connect(daemon.local_addr()).unwrap();
    client.send_raw(raw).unwrap();
    let response = client.read_response().unwrap_or_else(|e| {
        panic!("case `{case}`: no response ({e}); want {status}");
    });
    assert_eq!(
        response.status,
        status,
        "case `{case}`: {}",
        response.body_string()
    );

    // The daemon must shrug the malformed connection off entirely.
    let mut probe = Client::connect(daemon.local_addr()).unwrap();
    let health = probe.request("GET", "/health", b"").unwrap();
    assert_eq!(health.status, 200, "case `{case}` wedged the server");
}

#[test]
fn malformed_request_lines_are_400() {
    let daemon = default_daemon();
    assert_raw_status(&daemon, b"GARBAGE\r\n\r\n", 400, "one-token line");
    assert_raw_status(&daemon, b"GET /health\r\n\r\n", 400, "missing version");
    assert_raw_status(
        &daemon,
        b"GET /health HTTP/1.1 extra\r\n\r\n",
        400,
        "four tokens",
    );
    assert_raw_status(&daemon, b"\x00\x01\x02\r\n\r\n", 400, "binary junk");
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn unsupported_method_and_version_are_typed() {
    let daemon = default_daemon();
    assert_raw_status(
        &daemon,
        b"BREW /health HTTP/1.1\r\n\r\n",
        501,
        "unknown method",
    );
    assert_raw_status(
        &daemon,
        b"GET /health HTTP/3.0\r\n\r\n",
        505,
        "future version",
    );
    // A version token that is not HTTP/x.y at all is a malformed
    // request line, not a version we could negotiate down from.
    assert_raw_status(
        &daemon,
        b"GET /health SPDY/1\r\n\r\n",
        400,
        "non-HTTP version",
    );
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn oversized_request_line_is_414() {
    let daemon = default_daemon();
    let mut raw = Vec::from(&b"GET /"[..]);
    raw.extend(std::iter::repeat_n(b'a', 8192));
    raw.extend(b" HTTP/1.1\r\n\r\n");
    assert_raw_status(&daemon, &raw, 414, "8 KiB request line");
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn header_abuse_is_431_or_400() {
    let daemon = default_daemon();

    // One colossal header blows the total-header-bytes budget.
    let mut oversized = Vec::from(&b"GET /health HTTP/1.1\r\nX-Pad: "[..]);
    oversized.extend(std::iter::repeat_n(b'x', 32 * 1024));
    oversized.extend(b"\r\n\r\n");
    assert_raw_status(&daemon, &oversized, 431, "32 KiB header value");

    // Many small headers blow the header-count budget.
    let mut crowd = Vec::from(&b"GET /health HTTP/1.1\r\n"[..]);
    for i in 0..100 {
        crowd.extend(format!("X-H{i}: v\r\n").into_bytes());
    }
    crowd.extend(b"\r\n");
    assert_raw_status(&daemon, &crowd, 431, "100 headers");

    // A header line with no colon is malformed.
    assert_raw_status(
        &daemon,
        b"GET /health HTTP/1.1\r\nno-colon-here\r\n\r\n",
        400,
        "colonless header",
    );
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn content_length_abuse_is_typed() {
    let daemon = default_daemon();
    assert_raw_status(
        &daemon,
        b"POST /match HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        400,
        "non-numeric length",
    );
    assert_raw_status(
        &daemon,
        b"POST /match HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 9\r\n\r\nhello",
        400,
        "disagreeing duplicate lengths",
    );
    // A body over the daemon's cap is refused before it is read.
    let huge = format!(
        "POST /match HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    assert_raw_status(&daemon, huge.as_bytes(), 413, "64 MiB declared body");
    // Transfer-Encoding framing is not implemented: refuse loudly
    // rather than misframe.
    assert_raw_status(
        &daemon,
        b"POST /match HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        501,
        "chunked transfer",
    );
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn truncated_body_closes_without_hanging() {
    let daemon = spawn_daemon(ServeConfig {
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let addr = daemon.local_addr();

    // Promise 100 bytes, send 5, then leave the connection open: the
    // read budget expires and the server answers 408 and closes.
    let mut client = Client::connect(addr).unwrap();
    client
        .send_raw(b"POST /match HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello")
        .unwrap();
    let response = client.read_response().expect("stall must be answered");
    assert_eq!(response.status, 408, "{}", response.body_string());

    // Promise 100 bytes, send 5, then close outright: no response is
    // owed, the server must just drop the connection without fuss.
    let mut client = Client::connect(addr).unwrap();
    client
        .send_raw(b"POST /match HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello")
        .unwrap();
    drop(client);

    std::thread::sleep(Duration::from_millis(50));
    let mut probe = Client::connect(addr).unwrap();
    assert_eq!(probe.request("GET", "/health", b"").unwrap().status, 200);
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn pipelined_keep_alive_requests_all_answer_in_order() {
    let daemon = default_daemon();
    let mut client = Client::connect(daemon.local_addr()).unwrap();

    let ruleset = Sensitivity::Medium.ruleset().to_xml();
    let match_req = format!(
        "POST /match?policy=volga HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        ruleset.len(),
        ruleset
    );
    // Three requests in one burst: two matches and a health check.
    let mut burst = Vec::new();
    burst.extend(match_req.as_bytes());
    burst.extend(match_req.as_bytes());
    burst.extend(b"GET /health HTTP/1.1\r\n\r\n");
    client.send_raw(&burst).unwrap();

    for i in 0..2 {
        let response = client.read_response().unwrap();
        assert_eq!(response.status, 200, "pipelined match {i}");
        assert!(response.body_string().contains("\"behavior\""));
        assert_eq!(response.header("x-p3p-epoch"), Some("1"));
    }
    let health = client.read_response().unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_string().contains("\"status\": \"ok\""));
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn parse_error_closes_the_connection() {
    let daemon = default_daemon();
    let mut client = Client::connect(daemon.local_addr()).unwrap();
    // Malformed request followed by a valid one in the same burst:
    // the server answers the error and closes — it must NOT attempt
    // to resynchronize on guessed framing.
    client
        .send_raw(b"GARBAGE\r\n\r\nGET /health HTTP/1.1\r\n\r\n")
        .unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.header("connection"), Some("close"));
    // The next read sees EOF, not a second response.
    let err = client.read_response();
    assert!(err.is_err(), "connection must be closed after parse error");
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn leading_crlf_is_tolerated() {
    let daemon = default_daemon();
    let mut client = Client::connect(daemon.local_addr()).unwrap();
    client
        .send_raw(b"\r\nGET /health HTTP/1.1\r\n\r\n")
        .unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 200);
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn http10_defaults_to_close() {
    let daemon = default_daemon();
    let addr: SocketAddr = daemon.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.send_raw(b"GET /health HTTP/1.0\r\n\r\n").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn queue_full_bounce_is_a_well_formed_429() {
    // Stall the only worker, fill the 1-slot queue, and check the
    // accept-time bounce is a complete, parseable 429 response.
    let daemon = spawn_daemon(ServeConfig {
        workers: 1,
        queue_depth: 1,
        delay_ms: 300,
        ..ServeConfig::default()
    });
    let addr = daemon.local_addr();
    let ruleset = Sensitivity::Medium.ruleset().to_xml();
    let blocker = std::thread::spawn({
        let ruleset = ruleset.clone();
        move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .request("POST", "/match?policy=volga", ruleset.as_bytes())
                .unwrap()
        }
    });
    std::thread::sleep(Duration::from_millis(60));

    // One connection parks in the queue; subsequent ones bounce.
    let _parked = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let mut bounced_429 = false;
    for _ in 0..10 {
        let mut client = Client::connect(addr).unwrap();
        match client.read_response() {
            Ok(response) if response.status == 429 => {
                assert!(
                    response.header("retry-after").is_some(),
                    "Retry-After missing"
                );
                assert!(response.body_string().contains("queue_full"));
                bounced_429 = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(bounced_429, "expected at least one accept-time 429");
    assert_eq!(blocker.join().unwrap().status, 200);
    daemon.begin_drain();
    daemon.join();
}

#[test]
fn raw_eof_before_any_bytes_is_silent() {
    let daemon = default_daemon();
    // Open and immediately close several connections; nothing should
    // be logged as served, and the daemon keeps going.
    for _ in 0..5 {
        let stream = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
        drop(stream);
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut probe = Client::connect(daemon.local_addr()).unwrap();
    let mut body = String::new();
    let health = probe.request("GET", "/health", b"").unwrap();
    assert_eq!(health.status, 200);
    body.push_str(&health.body_string());
    assert!(body.contains("\"status\": \"ok\""));
    daemon.begin_drain();
    daemon.join();
}
