//! Structured spans with nesting, monotonic timing, and a bounded
//! in-memory trace buffer.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed
//! when its guard drops. Nesting is tracked per thread: a span opened
//! while another is active records that span as its parent. Completed
//! spans land in a global ring buffer (completion order, so children
//! precede their parents) that [`recent`] drains copies of.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default capacity of the global trace buffer.
const DEFAULT_CAPACITY: usize = 4096;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static BUFFER: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());

thread_local! {
    /// Stack of (span id, depth) for the spans currently open on this
    /// thread; the top is the parent of the next span opened.
    static ACTIVE: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small stable id for this thread (`ThreadId` has no stable
    /// numeric form), so trace exports can lane spans per thread.
    static THREAD_TID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// The single monotonic instant all span start offsets are measured
/// from, fixed the first time any span opens.
fn process_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Stable numeric id of the calling thread, as recorded on spans.
pub fn current_thread_id() -> u64 {
    THREAD_TID.with(|t| *t)
}

/// A completed span, as stored in the trace buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id, monotonically increasing in open order.
    pub id: u64,
    /// Id of the span that was active on the same thread when this one
    /// opened, if any.
    pub parent: Option<u64>,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
    /// Static span name, e.g. `"match"`.
    pub name: &'static str,
    /// Attributes attached at open time, e.g. `[("engine", "sql")]`.
    pub attrs: Vec<(&'static str, String)>,
    /// Monotonic wall time between open and close.
    pub duration: Duration,
    /// Open time in microseconds since the process span anchor (the
    /// first span ever opened), comparable across threads.
    pub start_us: u64,
    /// Stable id of the thread the span ran on (see
    /// [`current_thread_id`]).
    pub thread: u64,
}

/// RAII guard returned by [`span!`](crate::span!); records the span on
/// drop.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: Option<u64>,
    depth: usize,
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    start: Instant,
    start_us: u64,
    thread: u64,
}

impl SpanGuard {
    /// Open a span. Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let (parent, depth) = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            let depth = stack.len();
            stack.push(id);
            (parent, depth)
        });
        let anchor = process_anchor();
        let start = Instant::now();
        SpanGuard {
            id,
            parent,
            depth,
            name,
            attrs,
            start,
            start_us: start.saturating_duration_since(anchor).as_micros() as u64,
            thread: current_thread_id(),
        }
    }

    /// The span's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are guards, so drops are LIFO per thread; pop by
            // value anyway in case a guard was moved across a scope.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            depth: self.depth,
            name: self.name,
            attrs: std::mem::take(&mut self.attrs),
            duration,
            start_us: self.start_us,
            thread: self.thread,
        };
        let mut buffer = BUFFER.lock().unwrap();
        let cap = CAPACITY.load(Ordering::Relaxed);
        while buffer.len() >= cap {
            buffer.pop_front();
        }
        buffer.push_back(record);
    }
}

/// Open a span that closes (and is recorded) when the returned guard
/// drops.
///
/// ```
/// use p3p_telemetry::span;
/// let _outer = span!("match", engine = "sql");
/// {
///     let _inner = span!("translate");
/// } // inner recorded here, with `match` as its parent
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter(
            $name,
            vec![$((stringify!($key), $value.to_string())),+],
        )
    };
}

/// Copy of the trace buffer, oldest completed span first.
pub fn recent() -> Vec<SpanRecord> {
    BUFFER.lock().unwrap().iter().cloned().collect()
}

/// Discard all recorded spans.
pub fn clear() {
    BUFFER.lock().unwrap().clear();
}

/// Bound the trace buffer to `capacity` completed spans (oldest are
/// evicted first). Applies on the next span completion.
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The buffer is global and tests run in parallel, so every test
    // filters by names unique to it instead of clearing the buffer.
    fn spans_named(names: &[&str]) -> Vec<SpanRecord> {
        recent()
            .into_iter()
            .filter(|s| names.contains(&s.name))
            .collect()
    }

    #[test]
    fn nested_spans_record_parent_and_depth() {
        let outer = crate::span!("test_outer_a", engine = "sql");
        let outer_id = outer.id();
        let inner_id;
        {
            let inner = crate::span!("test_inner_a");
            inner_id = inner.id();
        }
        drop(outer);

        let spans = spans_named(&["test_outer_a", "test_inner_a"]);
        let inner = spans.iter().find(|s| s.id == inner_id).unwrap();
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.attrs, vec![("engine", "sql".to_string())]);
    }

    #[test]
    fn children_complete_before_parents() {
        let outer = crate::span!("test_outer_b");
        let outer_id = outer.id();
        let inner_id = {
            let inner = crate::span!("test_inner_b");
            inner.id()
        };
        drop(outer);

        let spans = spans_named(&["test_outer_b", "test_inner_b"]);
        let inner_pos = spans.iter().position(|s| s.id == inner_id).unwrap();
        let outer_pos = spans.iter().position(|s| s.id == outer_id).unwrap();
        assert!(inner_pos < outer_pos, "child must be recorded first");
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let outer = crate::span!("test_outer_c");
        let outer_id = outer.id();
        let first_id = {
            let s = crate::span!("test_sib_c");
            s.id()
        };
        let second_id = {
            let s = crate::span!("test_sib_c");
            s.id()
        };
        drop(outer);

        let spans = spans_named(&["test_sib_c"]);
        for id in [first_id, second_id] {
            let s = spans.iter().find(|s| s.id == id).unwrap();
            assert_eq!(s.parent, Some(outer_id));
            assert_eq!(s.depth, 1);
        }
    }

    #[test]
    fn durations_are_monotonic_and_nested() {
        let outer = crate::span!("test_outer_d");
        let outer_id = outer.id();
        let inner_id = {
            let inner = crate::span!("test_inner_d");
            std::thread::sleep(Duration::from_millis(2));
            inner.id()
        };
        drop(outer);

        let spans = spans_named(&["test_outer_d", "test_inner_d"]);
        let inner = spans.iter().find(|s| s.id == inner_id).unwrap();
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        assert!(inner.duration >= Duration::from_millis(2));
        assert!(outer.duration >= inner.duration);
    }

    #[test]
    fn start_offsets_and_thread_ids_support_trace_export() {
        let outer = crate::span!("test_outer_f");
        let outer_id = outer.id();
        let inner_id = {
            let inner = crate::span!("test_inner_f");
            inner.id()
        };
        let remote_id = std::thread::spawn(|| {
            let s = crate::span!("test_thread_f");
            s.id()
        })
        .join()
        .unwrap();
        drop(outer);

        let spans = spans_named(&["test_outer_f", "test_inner_f", "test_thread_f"]);
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        let inner = spans.iter().find(|s| s.id == inner_id).unwrap();
        let remote = spans.iter().find(|s| s.id == remote_id).unwrap();
        // A child opens after its parent on the shared anchor clock.
        assert!(inner.start_us >= outer.start_us);
        // Same thread shares one lane; the spawned thread gets another.
        assert_eq!(inner.thread, outer.thread);
        assert_eq!(outer.thread, current_thread_id());
        assert_ne!(remote.thread, outer.thread);
    }

    #[test]
    fn spans_on_other_threads_are_roots() {
        let _outer = crate::span!("test_outer_e");
        let id = std::thread::spawn(|| {
            let s = crate::span!("test_thread_e");
            s.id()
        })
        .join()
        .unwrap();
        let spans = spans_named(&["test_thread_e"]);
        let s = spans.iter().find(|s| s.id == id).unwrap();
        assert_eq!(s.parent, None);
        assert_eq!(s.depth, 0);
    }
}
