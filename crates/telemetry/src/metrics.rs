//! Global metrics registry: counters, gauges, and fixed-bucket latency
//! histograms.
//!
//! Metrics are identified by a base name plus an optional ordered label
//! set (`counter_with("p3p_matches_total", &[("engine", "sql")])`).
//! Handles are `Arc`s into the registry, so hot paths pay one atomic
//! op per update with no lock. The registry renders either as a
//! Prometheus-style text page ([`render_text`]) or a JSON snapshot
//! ([`snapshot_json`]); histograms expose p50/p90/p99 computed from
//! cumulative bucket counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Histogram bucket upper bounds, in the unit the caller observes
/// (latency call sites use microseconds). A 1–2–5 ladder from 1 to
/// 5·10⁶, plus an implicit +Inf overflow bucket.
pub const BUCKET_BOUNDS: [u64; 21] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram with cumulative-count percentile estimates.
///
/// An observation lands in the first bucket whose upper bound is ≥ the
/// value, so a quantile estimate is exact whenever the observations sit
/// on bucket boundaries and otherwise rounds up to the enclosing
/// bucket's bound.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len()],
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        match BUCKET_BOUNDS.iter().position(|&b| value <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration, in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile. Returns 0
    /// with no observations and `f64::INFINITY` when the quantile falls
    /// in the overflow bucket. `q` is clamped to `[0, 1]` (a NaN `q`
    /// behaves like 0), so callers can never read garbage ranks.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return BUCKET_BOUNDS[i] as f64;
            }
        }
        f64::INFINITY
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Cumulative counts per bucket, Prometheus-style: entry `i` is the
    /// number of observations ≤ `BUCKET_BOUNDS[i]`, and a final entry
    /// holds the total (the `+Inf` bucket).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(BUCKET_BOUNDS.len() + 1);
        let mut cumulative = 0;
        for bucket in &self.buckets {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push(cumulative);
        }
        out.push(cumulative + self.overflow.load(Ordering::Relaxed));
        out
    }
}

/// Base name plus rendered label set for one registered metric.
#[derive(Debug, Clone)]
struct Meta {
    name: String,
    /// `engine="sql",phase="translate"` — empty when unlabelled.
    labels: String,
}

impl Meta {
    fn key(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, self.labels)
        }
    }

    /// Rendered with `extra` appended to the label set.
    fn key_with(&self, extra: &str) -> String {
        if self.labels.is_empty() {
            format!("{}{{{}}}", self.name, extra)
        } else {
            format!("{}{{{},{}}}", self.name, self.labels, extra)
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, (Meta, Arc<Counter>)>>,
    gauges: Mutex<BTreeMap<String, (Meta, Arc<Gauge>)>>,
    histograms: Mutex<BTreeMap<String, (Meta, Arc<Histogram>)>>,
    /// Family name → help text for the `# HELP` line.
    descriptions: Mutex<BTreeMap<String, String>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Escape a label value for the Prometheus text format: backslash,
/// double quote, and newline must not appear raw inside `k="v"`.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn meta(name: &str, labels: &[(&str, &str)]) -> Meta {
    let labels = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",");
    Meta {
        name: name.to_string(),
        labels,
    }
}

/// Counter handle for `name` with no labels.
pub fn counter(name: &str) -> Arc<Counter> {
    counter_with(name, &[])
}

/// Counter handle for `name` with the given label set.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    let meta = meta(name, labels);
    let mut map = registry().counters.lock().unwrap();
    map.entry(meta.key())
        .or_insert_with(|| (meta, Arc::new(Counter::default())))
        .1
        .clone()
}

/// Gauge handle for `name` with no labels.
pub fn gauge(name: &str) -> Arc<Gauge> {
    gauge_with(name, &[])
}

/// Gauge handle for `name` with the given label set.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    let meta = meta(name, labels);
    let mut map = registry().gauges.lock().unwrap();
    map.entry(meta.key())
        .or_insert_with(|| (meta, Arc::new(Gauge::default())))
        .1
        .clone()
}

/// Histogram handle for `name` with no labels.
pub fn histogram(name: &str) -> Arc<Histogram> {
    histogram_with(name, &[])
}

/// Histogram handle for `name` with the given label set.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    let meta = meta(name, labels);
    let mut map = registry().histograms.lock().unwrap();
    map.entry(meta.key())
        .or_insert_with(|| (meta, Arc::new(Histogram::default())))
        .1
        .clone()
}

/// Attach help text to a metric family: the Prometheus `# HELP` line
/// renders it instead of the generic `p3p-suite <kind>` placeholder.
/// Describing a family does not register it — pair with a handle call
/// (`counter(name)`) when the family should render before first use.
pub fn describe(name: &str, help: &str) {
    registry()
        .descriptions
        .lock()
        .unwrap()
        .insert(name.to_string(), help.to_string());
}

/// Drop every registered metric. Handles already held keep working but
/// are no longer rendered. Intended for tests and fresh snapshots.
pub fn reset() {
    registry().counters.lock().unwrap().clear();
    registry().gauges.lock().unwrap().clear();
    registry().histograms.lock().unwrap().clear();
    registry().descriptions.lock().unwrap().clear();
}

fn fmt_bound(i: usize) -> String {
    if i < BUCKET_BOUNDS.len() {
        BUCKET_BOUNDS[i].to_string()
    } else {
        "+Inf".to_string()
    }
}

/// Render the registry as a Prometheus-style text exposition page.
///
/// Samples are grouped by metric family (base name), each family headed
/// by exactly one `# HELP` and one `# TYPE` line regardless of how many
/// labelled variants it has — the BTreeMap key order would otherwise
/// interleave `foo` < `foo_bar` < `foo{...}` and split a family.
pub fn render_text() -> String {
    // family name -> (kind, sample lines in registry key order)
    let mut families: BTreeMap<String, (&'static str, Vec<String>)> = BTreeMap::new();

    for (meta, c) in registry().counters.lock().unwrap().values() {
        let entry = families
            .entry(meta.name.clone())
            .or_insert_with(|| ("counter", Vec::new()));
        entry.1.push(format!("{} {}\n", meta.key(), c.get()));
    }
    for (meta, g) in registry().gauges.lock().unwrap().values() {
        let entry = families
            .entry(meta.name.clone())
            .or_insert_with(|| ("gauge", Vec::new()));
        entry.1.push(format!("{} {}\n", meta.key(), g.get()));
    }
    for (meta, h) in registry().histograms.lock().unwrap().values() {
        let entry = families
            .entry(meta.name.clone())
            .or_insert_with(|| ("histogram", Vec::new()));
        for (i, cumulative) in h.cumulative_buckets().iter().enumerate() {
            let le = format!("le=\"{}\"", fmt_bound(i));
            entry.1.push(format!(
                "{}_bucket{} {}\n",
                meta.name,
                if meta.labels.is_empty() {
                    format!("{{{le}}}")
                } else {
                    format!("{{{},{le}}}", meta.labels)
                },
                cumulative
            ));
        }
        entry
            .1
            .push(format!("{} {}\n", meta.key_with("stat=\"sum\""), h.sum()));
        entry.1.push(format!(
            "{} {}\n",
            meta.key_with("stat=\"count\""),
            h.count()
        ));
    }

    let descriptions = registry().descriptions.lock().unwrap();
    let mut out = String::new();
    for (name, (kind, lines)) in families {
        match descriptions.get(&name) {
            Some(help) => out.push_str(&format!("# HELP {name} {help}\n")),
            None => out.push_str(&format!("# HELP {name} p3p-suite {kind}\n")),
        }
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for line in lines {
            out.push_str(&line);
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render the registry as a JSON snapshot:
/// `{"counters": {..}, "gauges": {..}, "histograms": {..}}` where each
/// histogram carries count, sum, p50/p90/p99 and cumulative buckets.
pub fn snapshot_json() -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let counters = registry().counters.lock().unwrap();
    let mut first = true;
    for (key, (_, c)) in counters.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{}\": {}",
            crate::json_escape(key),
            c.get()
        ));
    }
    drop(counters);
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = registry().gauges.lock().unwrap();
    let mut first = true;
    for (key, (_, g)) in gauges.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{}\": {}",
            crate::json_escape(key),
            g.get()
        ));
    }
    drop(gauges);
    out.push_str("\n  },\n  \"histograms\": {");
    let histograms = registry().histograms.lock().unwrap();
    let mut first = true;
    for (key, (_, h)) in histograms.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let buckets = h
            .cumulative_buckets()
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{{\"le\": \"{}\", \"count\": {c}}}", fmt_bound(i)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
            crate::json_escape(key),
            h.count(),
            h.sum(),
            json_f64(h.p50()),
            json_f64(h.p90()),
            json_f64(h.p99()),
            buckets
        ));
    }
    drop(histograms);
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is global and tests run in parallel, so each test
    // uses metric names unique to it.

    #[test]
    fn counter_accumulates() {
        let c = counter("test_counter_acc");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(counter("test_counter_acc").get(), 5, "same handle");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = gauge("test_gauge_moves");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn labelled_metrics_are_distinct() {
        let a = counter_with("test_labelled", &[("engine", "sql")]);
        let b = counter_with("test_labelled", &[("engine", "native")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn histogram_percentiles_at_bucket_boundaries() {
        let h = Histogram::default();
        // 100 observations: exactly one per value 1..=100. Bucket
        // bounds at 1, 2, 5, 10, 20, 50, 100 cover them.
        for v in 1..=100 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // rank(0.50) = 50 -> cumulative hits 50 exactly at le=50.
        assert_eq!(h.p50(), 50.0);
        // rank(0.90) = 90 -> first bucket with cumulative >= 90 is
        // le=100 (cumulative 100).
        assert_eq!(h.p90(), 100.0);
        assert_eq!(h.p99(), 100.0);
    }

    #[test]
    fn histogram_boundary_observation_lands_in_exact_bucket() {
        let h = Histogram::default();
        h.observe(5); // on the le=5 boundary: must count as <= 5
        assert_eq!(h.quantile(1.0), 5.0);
        let cumulative = h.cumulative_buckets();
        let le5 = BUCKET_BOUNDS.iter().position(|&b| b == 5).unwrap();
        assert_eq!(cumulative[le5], 1);
        assert_eq!(cumulative[le5 - 1], 0);
    }

    #[test]
    fn histogram_overflow_reports_infinity() {
        let h = Histogram::default();
        h.observe(BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1] + 1);
        assert!(h.p50().is_infinite());
        assert_eq!(*h.cumulative_buckets().last().unwrap(), 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn concurrent_counter_increments_from_multiple_threads() {
        let c = counter("test_concurrent_counter");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn concurrent_histogram_observations() {
        let h = histogram("test_concurrent_histogram");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 1..=100 {
                        h.observe(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 400);
        assert_eq!(h.sum(), 4 * 5050);
        assert_eq!(h.p50(), 50.0);
    }

    #[test]
    fn text_rendering_contains_type_lines_and_buckets() {
        let c = counter_with("test_render_total", &[("engine", "sql")]);
        c.add(3);
        let h = histogram_with("test_render_latency_us", &[("engine", "sql")]);
        h.observe(7);
        let text = render_text();
        assert!(text.contains("# TYPE test_render_total counter"));
        assert!(text.contains("test_render_total{engine=\"sql\"} 3"));
        assert!(text.contains("# TYPE test_render_latency_us histogram"));
        assert!(text.contains("test_render_latency_us_bucket{engine=\"sql\",le=\"10\"} 1"));
        assert!(text.contains("test_render_latency_us_bucket{engine=\"sql\",le=\"+Inf\"} 1"));
        assert!(text.contains("test_render_latency_us{engine=\"sql\",stat=\"count\"} 1"));
    }

    #[test]
    fn quantile_clamps_q_outside_unit_interval() {
        let h = Histogram::default();
        h.observe(7);
        // A single observation: every quantile is its bucket (le=10).
        assert_eq!(h.quantile(0.0), 10.0);
        assert_eq!(h.quantile(1.0), 10.0);
        // Out-of-range q must clamp instead of producing a rank past
        // the total count (which used to report a spurious +Inf).
        assert_eq!(h.quantile(2.5), 10.0);
        assert_eq!(h.quantile(-1.0), 10.0);
        assert_eq!(h.quantile(f64::NAN), 10.0);
    }

    #[test]
    fn quantile_edge_cases_empty_and_overflow() {
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.quantile(7.0), 0.0, "clamped q on empty is still 0");
        assert!(!empty.quantile(f64::NAN).is_nan());

        let h = Histogram::default();
        h.observe(BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1] + 1);
        assert!(h.quantile(1.0).is_infinite(), "overflow bucket is +Inf");
        assert!(
            h.quantile(9.0).is_infinite(),
            "clamped q resolves to the overflow bucket, not garbage"
        );
    }

    #[test]
    fn hostile_label_values_are_escaped_in_text_rendering() {
        let c = counter_with(
            "test_hostile_total",
            &[("path", "a\\b\"c\nd"), ("engine", "sql")],
        );
        c.inc();
        let text = render_text();
        assert!(
            text.contains("test_hostile_total{path=\"a\\\\b\\\"c\\nd\",engine=\"sql\"} 1"),
            "{text}"
        );
        // No raw newline may survive inside a sample line.
        for line in text.lines().filter(|l| l.contains("test_hostile_total")) {
            assert!(line.ends_with('1') || line.starts_with('#'), "{line}");
        }
        let json = snapshot_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "hostile labels broke the JSON snapshot: {json}"
        );
    }

    #[test]
    fn type_and_help_lines_appear_once_per_family() {
        // An unlabelled variant, a labelled variant, and an interleaving
        // family name: BTreeMap orders test_once < test_once_sub_total <
        // test_once{...}, which used to split the family and duplicate
        // its TYPE line.
        counter("test_once_total").inc();
        counter("test_once_sub_total").inc();
        counter_with("test_once_total", &[("engine", "sql")]).inc();
        histogram_with("test_once_lat_us", &[("engine", "a")]).observe(1);
        histogram_with("test_once_lat_us", &[("engine", "b")]).observe(2);
        let text = render_text();
        for (family, kind) in [
            ("test_once_total", "counter"),
            ("test_once_sub_total", "counter"),
            ("test_once_lat_us", "histogram"),
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} {kind}\n")).count(),
                1,
                "{family} TYPE not unique:\n{text}"
            );
            assert_eq!(
                text.matches(&format!("# HELP {family} ")).count(),
                1,
                "{family} HELP not unique:\n{text}"
            );
        }
        // Both labelled variants render under the single family header.
        assert!(text.contains("test_once_lat_us_bucket{engine=\"a\",le=\"1\"} 1"));
        assert!(text.contains("test_once_lat_us_bucket{engine=\"b\",le=\"2\"} 1"));
    }

    #[test]
    fn described_families_render_custom_help_text() {
        describe("test_described_total", "Shards sent over the wire");
        counter("test_described_total").inc();
        counter("test_undescribed_total").inc();
        let text = render_text();
        assert!(
            text.contains("# HELP test_described_total Shards sent over the wire\n"),
            "{text}"
        );
        assert_eq!(
            text.matches("# HELP test_described_total ").count(),
            1,
            "describe must not duplicate the HELP line:\n{text}"
        );
        assert!(
            text.contains("# HELP test_undescribed_total p3p-suite counter\n"),
            "undescribed families keep the generic placeholder:\n{text}"
        );
    }

    #[test]
    fn json_snapshot_is_well_formed_enough() {
        let c = counter("test_json_counter");
        c.inc();
        let h = histogram("test_json_latency_us");
        h.observe(10);
        let json = snapshot_json();
        assert!(json.contains("\"test_json_counter\": 1"));
        assert!(json.contains("\"test_json_latency_us\": {\"count\": 1"));
        assert!(json.contains("\"p50\": 10"));
        // Balanced braces is a cheap sanity check for hand-rolled JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
    }
}
