//! Slow-query log.
//!
//! The executor reports every statement it runs through [`record`];
//! statements whose wall time is at or above the configured threshold
//! are kept in a bounded global log. A threshold of zero therefore
//! captures *every* statement — the mode integration tests use to
//! assert that each executed SQL statement is attributable to the APPEL
//! rule it was translated from.
//!
//! Attribution works through a thread-local query context: the match
//! pipeline sets the originating rule id (via [`QueryContextGuard`])
//! before handing the statement to the executor, and [`record`] reads
//! it back. The log stores the executor's statistics as the
//! engine-neutral [`QueryStats`] so this crate stays dependency-free.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default capacity of the slow-query log.
const DEFAULT_CAPACITY: usize = 1024;

/// Threshold in nanoseconds. Starts effectively disabled.
static THRESHOLD_NANOS: AtomicU64 = AtomicU64::new(u64::MAX);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static LOG: Mutex<VecDeque<SlowQueryRecord>> = Mutex::new(VecDeque::new());

thread_local! {
    /// APPEL rule id the statement currently executing on this thread
    /// was translated from, if the caller declared one.
    static RULE_CONTEXT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Engine-neutral executor statistics for one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Rows visited by scans and index probes.
    pub rows_scanned: u64,
    /// Index lookups performed.
    pub index_probes: u64,
    /// Full-table (sequential) scans started.
    pub seq_scans: u64,
    /// Correlated subquery evaluations.
    pub subqueries: u64,
    /// Rows in the statement's result.
    pub rows_output: u64,
    /// Hash tables built for hash-join levels.
    pub join_hash_builds: u64,
    /// Probes into hash-join tables.
    pub join_hash_probes: u64,
}

/// One captured slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// The SQL text as executed.
    pub sql: String,
    /// APPEL rule id the statement was translated from, if known.
    pub rule_id: Option<u64>,
    /// Executor statistics for this statement alone.
    pub stats: QueryStats,
    /// Wall time of the statement.
    pub wall: Duration,
    /// Join strategy the planner chose (per-level scan order and
    /// operators), for multi-table SELECTs that went through the
    /// cost-based planner.
    pub join_strategy: Option<String>,
    /// Rendered `EXPLAIN ANALYZE` tree of the statement's execution
    /// (actual rows/loops/time per operator), when the executor ran
    /// with profiling enabled.
    pub analyzed_plan: Option<String>,
}

/// RAII guard that tags statements executed on this thread with an
/// APPEL rule id, restoring the previous tag on drop.
#[derive(Debug)]
pub struct QueryContextGuard {
    previous: Option<u64>,
}

impl QueryContextGuard {
    /// Tag subsequent statements on this thread as translated from
    /// `rule_id`.
    pub fn rule(rule_id: u64) -> QueryContextGuard {
        let previous = RULE_CONTEXT.with(|c| c.replace(Some(rule_id)));
        QueryContextGuard { previous }
    }
}

impl Drop for QueryContextGuard {
    fn drop(&mut self) {
        RULE_CONTEXT.with(|c| c.set(self.previous));
    }
}

/// The rule id statements on this thread are currently attributed to.
pub fn current_rule() -> Option<u64> {
    RULE_CONTEXT.with(|c| c.get())
}

/// Capture every statement at least `threshold` slow. Zero captures
/// everything.
pub fn set_threshold(threshold: Duration) {
    THRESHOLD_NANOS.store(
        u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
}

/// Stop capturing (the default state).
pub fn disable() {
    THRESHOLD_NANOS.store(u64::MAX, Ordering::Relaxed);
}

/// Bound the log to `capacity` records, evicting oldest first.
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Report an executed statement. Called by the executor for every
/// statement; the record is kept only if `wall` meets the threshold.
/// The rule id is read from this thread's [`QueryContextGuard`].
pub fn record(sql: &str, stats: QueryStats, wall: Duration) {
    record_with_strategy(sql, stats, wall, None);
}

/// [`record`] plus the join strategy the planner chose for the
/// statement, when it planned one.
pub fn record_with_strategy(
    sql: &str,
    stats: QueryStats,
    wall: Duration,
    join_strategy: Option<String>,
) {
    record_analyzed(sql, stats, wall, join_strategy, None);
}

/// [`record_with_strategy`] plus the statement's analyzed plan (the
/// rendered `EXPLAIN ANALYZE` tree), when the executor profiled it.
pub fn record_analyzed(
    sql: &str,
    stats: QueryStats,
    wall: Duration,
    join_strategy: Option<String>,
    analyzed_plan: Option<String>,
) {
    let threshold = THRESHOLD_NANOS.load(Ordering::Relaxed);
    if u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX) < threshold {
        return;
    }
    let record = SlowQueryRecord {
        sql: sql.to_string(),
        rule_id: current_rule(),
        stats,
        wall,
        join_strategy,
        analyzed_plan,
    };
    let mut log = LOG.lock().unwrap();
    let cap = CAPACITY.load(Ordering::Relaxed);
    while log.len() >= cap {
        log.pop_front();
    }
    log.push_back(record);
}

/// Copy of the log, oldest first.
pub fn entries() -> Vec<SlowQueryRecord> {
    LOG.lock().unwrap().iter().cloned().collect()
}

/// Discard all captured records.
pub fn clear() {
    LOG.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The log and threshold are global and tests run in parallel, so
    // these tests mark their records with unique SQL text and tolerate
    // records from other tests being present.

    #[test]
    fn threshold_zero_captures_everything_with_rule_attribution() {
        set_threshold(Duration::ZERO);
        {
            let _ctx = QueryContextGuard::rule(3);
            record(
                "SELECT slowlog_test_a",
                QueryStats {
                    rows_scanned: 7,
                    ..QueryStats::default()
                },
                Duration::from_micros(1),
            );
        }
        record(
            "SELECT slowlog_test_b",
            QueryStats::default(),
            Duration::ZERO,
        );
        let entries = entries();
        let a = entries
            .iter()
            .find(|r| r.sql == "SELECT slowlog_test_a")
            .expect("zero threshold keeps the record");
        assert_eq!(a.rule_id, Some(3));
        assert_eq!(a.stats.rows_scanned, 7);
        let b = entries
            .iter()
            .find(|r| r.sql == "SELECT slowlog_test_b")
            .expect("even a zero-duration statement is captured");
        assert_eq!(b.rule_id, None, "context guard must not leak");
    }

    #[test]
    fn context_guard_nests_and_restores() {
        assert_eq!(current_rule(), None);
        let outer = QueryContextGuard::rule(1);
        assert_eq!(current_rule(), Some(1));
        {
            let _inner = QueryContextGuard::rule(2);
            assert_eq!(current_rule(), Some(2));
        }
        assert_eq!(current_rule(), Some(1));
        drop(outer);
        assert_eq!(current_rule(), None);
    }

    #[test]
    fn join_strategy_is_recorded_when_supplied() {
        set_threshold(Duration::ZERO);
        record_with_strategy(
            "SELECT slowlog_test_strategy",
            QueryStats {
                join_hash_builds: 1,
                join_hash_probes: 9,
                ..QueryStats::default()
            },
            Duration::from_micros(2),
            Some("a: seq scan, b: hash join on (k)".to_string()),
        );
        let entry = entries()
            .into_iter()
            .find(|r| r.sql == "SELECT slowlog_test_strategy")
            .expect("captured");
        assert_eq!(
            entry.join_strategy.as_deref(),
            Some("a: seq scan, b: hash join on (k)")
        );
        assert_eq!(entry.stats.join_hash_probes, 9);
    }

    #[test]
    fn analyzed_plan_is_recorded_when_supplied() {
        set_threshold(Duration::ZERO);
        record_analyzed(
            "SELECT slowlog_test_analyzed",
            QueryStats::default(),
            Duration::from_micros(3),
            None,
            Some("Select (rows=1)\n  seq scan t AS t (rows=4 loops=1)".to_string()),
        );
        let entry = entries()
            .into_iter()
            .find(|r| r.sql == "SELECT slowlog_test_analyzed")
            .expect("captured");
        let plan = entry.analyzed_plan.expect("analyzed plan attached");
        assert!(plan.contains("seq scan t"), "{plan}");
        // Plain records carry no analyzed plan.
        record(
            "SELECT slowlog_test_unanalyzed",
            QueryStats::default(),
            Duration::from_micros(3),
        );
        let entry = entries()
            .into_iter()
            .find(|r| r.sql == "SELECT slowlog_test_unanalyzed")
            .expect("captured");
        assert_eq!(entry.analyzed_plan, None);
    }

    #[test]
    fn fast_statements_are_dropped_under_a_high_threshold() {
        set_threshold(Duration::ZERO);
        // Raise the threshold just for this record; other parallel
        // tests set it to zero again for themselves, which is fine —
        // we only assert our own marker never appears.
        THRESHOLD_NANOS.store(u64::MAX, Ordering::Relaxed);
        record(
            "SELECT slowlog_test_dropped",
            QueryStats::default(),
            Duration::from_millis(5),
        );
        set_threshold(Duration::ZERO);
        assert!(entries()
            .iter()
            .all(|r| r.sql != "SELECT slowlog_test_dropped"));
    }
}
