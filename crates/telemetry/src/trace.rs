//! Chrome trace-event export for recorded spans.
//!
//! [`chrome_trace_json`] renders a slice of [`SpanRecord`]s as the
//! JSON Object Format of the Trace Event specification — one complete
//! (`"ph": "X"`) event per span, timestamped in microseconds on the
//! process span anchor and laned by the span's thread id — so a full
//! sharded `match_corpus` sweep opens directly in `chrome://tracing`
//! or Perfetto. Span attributes, the span id, and the parent id ride
//! along in `args`.

use crate::json_escape;
use crate::span::SpanRecord;

/// Render `spans` as Chrome trace-event JSON
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Spans come out of [`crate::span::recent`] in completion order;
/// ordering does not matter to trace viewers, which sort by `ts`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"p3p\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"span_id\": {}",
            json_escape(s.name),
            s.start_us,
            s.duration.as_micros(),
            s.thread,
            s.id,
        ));
        if let Some(parent) = s.parent {
            out.push_str(&format!(", \"parent\": {parent}"));
        }
        for (k, v) in &s.attrs {
            out.push_str(&format!(", \"{}\": \"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str("}}");
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    // The span buffer is global and tests run in parallel, so this test
    // renders only the spans it created itself.
    #[test]
    fn trace_json_has_loadable_shape() {
        {
            let _outer = crate::span!("test_trace_outer", engine = "sql");
            let _inner = crate::span!("test_trace_inner");
        }
        let spans: Vec<_> = span::recent()
            .into_iter()
            .filter(|s| s.name.starts_with("test_trace_"))
            .collect();
        assert!(spans.len() >= 2);
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\": ["), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"name\": \"test_trace_outer\""), "{json}");
        assert!(json.contains("\"engine\": \"sql\""), "{json}");
        assert!(json.contains("\"parent\": "), "{json}");
        // One event per span, each with a ts/dur/tid triple.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), spans.len());
        assert_eq!(json.matches("\"ts\": ").count(), spans.len());
        assert_eq!(json.matches("\"dur\": ").count(), spans.len());
        assert_eq!(json.matches("\"tid\": ").count(), spans.len());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
    }

    #[test]
    fn empty_span_set_renders_an_empty_event_array() {
        let json = chrome_trace_json(&[]);
        assert_eq!(
            json,
            "{\"traceEvents\": [\n], \"displayTimeUnit\": \"ms\"}\n"
        );
    }
}
