//! # p3p-telemetry — observability for the matching pipeline
//!
//! The paper's contribution is a performance claim (§5: ~15x end-to-end,
//! ~30x on query time for APPEL→SQL over the native APPEL engine). This
//! crate gives the suite first-class instruments for proving such claims
//! per engine, per phase, and per query:
//!
//! * [`span!`] — lightweight structured tracing with parent/child
//!   nesting, monotonic timing, and a bounded in-memory trace buffer;
//! * [`metrics`] — a global registry of counters, gauges, and
//!   fixed-bucket latency histograms (p50/p90/p99), rendered as a
//!   Prometheus-style text page or a JSON snapshot;
//! * [`slowlog`] — a slow-query log capturing SQL text, the APPEL rule
//!   it was translated from, executor statistics, wall time, and (with
//!   profiling on) the analyzed plan for every statement slower than a
//!   configurable threshold;
//! * [`trace`] — Chrome trace-event JSON export of the span buffer, so
//!   a sharded corpus sweep opens in `chrome://tracing`/Perfetto.
//!
//! The crate is dependency-free: the build environment has no access to
//! a crates.io mirror, so `parking_lot` is substituted with
//! `std::sync::Mutex` (uncontended lock cost is irrelevant next to the
//! query times being measured).
//!
//! ```
//! use p3p_telemetry::{metrics, span};
//!
//! let _guard = span!("match", engine = "sql");
//! metrics::counter("doc_example_matches_total").inc();
//! metrics::histogram("doc_example_latency_us").observe(42);
//! let text = metrics::render_text();
//! assert!(text.contains("doc_example_matches_total"));
//! ```

pub mod metrics;
pub mod slowlog;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use slowlog::{QueryStats, SlowQueryRecord};
pub use span::{SpanGuard, SpanRecord};
pub use trace::chrome_trace_json;

/// Escape a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
