//! Property-based tests for the P3P policy model: XML round-trips,
//! augmentation laws, compact-policy stability, and reference-file
//! matcher laws.

use p3p_policy::augment::{augment_policy, is_augmented};
use p3p_policy::compact::CompactPolicy;
use p3p_policy::model::{DataGroup, DataRef, Policy, PurposeUse, RecipientUse, Statement};
use p3p_policy::reference::wildcard_match;
use p3p_policy::vocab::{Access, Category, Purpose, Recipient, Required, Retention};
use proptest::prelude::*;

fn required_strategy() -> impl Strategy<Value = Required> {
    prop::sample::select(Required::ALL.to_vec())
}

fn data_ref_strategy() -> impl Strategy<Value = DataRef> {
    (
        prop::sample::select(vec![
            "user.name",
            "user.name.given",
            "user.bdate",
            "user.home-info.postal",
            "user.home-info.online.email",
            "dynamic.clickstream",
            "dynamic.cookies",
            "dynamic.miscdata",
            "custom.survey.q1",
        ]),
        prop::bool::ANY,
        prop::collection::vec(prop::sample::select(Category::ALL.to_vec()), 0..3),
    )
        .prop_map(|(r, optional, mut cats)| {
            cats.sort_unstable();
            cats.dedup();
            DataRef {
                reference: r.to_string(),
                optional,
                categories: cats,
            }
        })
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec(
            (prop::sample::select(Purpose::ALL.to_vec()), required_strategy()),
            1..4,
        ),
        prop::collection::vec(
            (prop::sample::select(Recipient::ALL.to_vec()), required_strategy()),
            1..3,
        ),
        prop::sample::select(Retention::ALL.to_vec()),
        prop::collection::vec(data_ref_strategy(), 0..4),
        prop::option::of("[a-zA-Z0-9 .,]{0,40}"),
    )
        .prop_map(|(purposes, recipients, retention, data, consequence)| {
            let mut purposes: Vec<PurposeUse> = purposes
                .into_iter()
                .map(|(purpose, required)| PurposeUse { purpose, required })
                .collect();
            purposes.sort_by_key(|p| p.purpose);
            purposes.dedup_by_key(|p| p.purpose);
            let mut recipients: Vec<RecipientUse> = recipients
                .into_iter()
                .map(|(recipient, required)| RecipientUse { recipient, required })
                .collect();
            recipients.sort_by_key(|r| r.recipient);
            recipients.dedup_by_key(|r| r.recipient);
            Statement {
                consequence: consequence.map(|c| c.trim().to_string()).filter(|c| !c.is_empty()),
                non_identifiable: false,
                purposes,
                recipients,
                retention: vec![retention],
                data_groups: if data.is_empty() {
                    vec![]
                } else {
                    vec![DataGroup { base: None, data }]
                },
            }
        })
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    (
        "[a-z][a-z0-9-]{0,12}",
        prop::option::of(prop::sample::select(Access::ALL.to_vec())),
        prop::collection::vec(statement_strategy(), 1..4),
    )
        .prop_map(|(name, access, statements)| {
            let mut p = Policy::new(name);
            p.access = access;
            p.statements = statements;
            p
        })
}

proptest! {
    /// serialize ∘ parse is the identity on policies.
    #[test]
    fn policy_xml_roundtrip(policy in policy_strategy()) {
        let xml = policy.to_xml();
        let back = Policy::parse(&xml).unwrap();
        prop_assert_eq!(policy, back);
    }

    /// Augmentation is idempotent and monotone (never removes data or
    /// categories).
    #[test]
    fn augmentation_laws(policy in policy_strategy()) {
        let once = augment_policy(&policy);
        prop_assert!(is_augmented(&once));
        prop_assert_eq!(&augment_policy(&once), &once);
        for (orig, aug) in policy.statements.iter().zip(&once.statements) {
            let orig_refs: Vec<&str> = orig
                .data_groups
                .iter()
                .flat_map(|g| g.data.iter())
                .map(|d| d.reference.as_str())
                .collect();
            let aug_refs: Vec<&str> = aug
                .data_groups
                .iter()
                .flat_map(|g| g.data.iter())
                .map(|d| d.reference.as_str())
                .collect();
            for r in orig_refs {
                prop_assert!(aug_refs.contains(&r), "lost {r}");
            }
        }
    }

    /// Augmentation commutes with XML round-tripping.
    #[test]
    fn augmentation_commutes_with_xml(policy in policy_strategy()) {
        let a = augment_policy(&Policy::parse(&policy.to_xml()).unwrap());
        let b = Policy::parse(&augment_policy(&policy).to_xml()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The compact policy of a policy equals the compact policy of its
    /// augmented form (augmentation is already folded in).
    #[test]
    fn compact_policy_is_augmentation_stable(policy in policy_strategy()) {
        let direct = CompactPolicy::from_policy(&policy);
        let via_augmented = CompactPolicy::from_policy(&augment_policy(&policy));
        let tokens = |cp: &CompactPolicy| {
            let mut t: Vec<String> = cp.tokens.iter().map(|t| t.as_str().to_string()).collect();
            t.sort();
            t
        };
        prop_assert_eq!(tokens(&direct), tokens(&via_augmented));
    }

    /// Compact headers round-trip.
    #[test]
    fn compact_header_roundtrip(policy in policy_strategy()) {
        let cp = CompactPolicy::from_policy(&policy);
        prop_assert_eq!(CompactPolicy::parse_header(&cp.to_header()), cp);
    }

    /// Wildcard matcher laws: exact strings match themselves; `*`
    /// matches everything; a pattern matches what it generates.
    #[test]
    fn wildcard_laws(text in "[a-z/.]{0,20}", prefix in "[a-z/]{0,8}", suffix in "[a-z.]{0,8}") {
        prop_assert!(wildcard_match(&text, &text));
        prop_assert!(wildcard_match("*", &text));
        let pattern = format!("{prefix}*{suffix}");
        let generated = format!("{prefix}{text}{suffix}");
        prop_assert!(wildcard_match(&pattern, &generated), "{pattern} vs {generated}");
    }

    /// Validation accepts everything the generator produces whose
    /// unknown data refs carry explicit categories.
    #[test]
    fn generated_policies_validate_conditionally(policy in policy_strategy()) {
        let violations = p3p_policy::validate::validate(&policy);
        for v in &violations {
            // The only acceptable finding is an unknown data element
            // without categories (the generator may produce those).
            prop_assert!(
                v.message.contains("not in the base data schema"),
                "unexpected violation: {v}"
            );
        }
    }
}
