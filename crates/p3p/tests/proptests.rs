//! Randomised tests for the P3P policy model: XML round-trips,
//! augmentation laws, compact-policy stability, and reference-file
//! matcher laws.
//!
//! Formerly `proptest` properties; the build environment has no
//! crates.io access, so each property now runs over a deterministic
//! stream of pseudo-random policies from an inline SplitMix64 generator.

use p3p_policy::augment::{augment_policy, is_augmented};
use p3p_policy::compact::CompactPolicy;
use p3p_policy::model::{DataGroup, DataRef, Policy, PurposeUse, RecipientUse, Statement};
use p3p_policy::reference::wildcard_match;
use p3p_policy::vocab::{Access, Category, Purpose, Recipient, Required, Retention};

struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (((self.next() as u128) * (n as u128)) >> 64) as usize
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.index(options.len())]
    }

    fn chars(&mut self, alphabet: &[u8], max_len: usize) -> String {
        (0..self.index(max_len + 1))
            .map(|_| alphabet[self.index(alphabet.len())] as char)
            .collect()
    }

    fn data_ref(&mut self) -> DataRef {
        const REFS: &[&str] = &[
            "user.name",
            "user.name.given",
            "user.bdate",
            "user.home-info.postal",
            "user.home-info.online.email",
            "dynamic.clickstream",
            "dynamic.cookies",
            "dynamic.miscdata",
            "custom.survey.q1",
        ];
        let mut cats: Vec<Category> = (0..self.index(3))
            .map(|_| *self.pick(Category::ALL))
            .collect();
        cats.sort_unstable();
        cats.dedup();
        DataRef {
            reference: self.pick(REFS).to_string(),
            optional: self.index(2) == 1,
            categories: cats,
        }
    }

    fn statement(&mut self) -> Statement {
        let mut purposes: Vec<PurposeUse> = (0..1 + self.index(3))
            .map(|_| PurposeUse {
                purpose: *self.pick(Purpose::ALL),
                required: *self.pick(Required::ALL),
            })
            .collect();
        purposes.sort_by_key(|p| p.purpose);
        purposes.dedup_by_key(|p| p.purpose);
        let mut recipients: Vec<RecipientUse> = (0..1 + self.index(2))
            .map(|_| RecipientUse {
                recipient: *self.pick(Recipient::ALL),
                required: *self.pick(Required::ALL),
            })
            .collect();
        recipients.sort_by_key(|r| r.recipient);
        recipients.dedup_by_key(|r| r.recipient);
        let data: Vec<DataRef> = (0..self.index(4)).map(|_| self.data_ref()).collect();
        let consequence = if self.index(2) == 1 {
            Some(self.chars(b"abcXYZ019 .,", 40))
        } else {
            None
        };
        Statement {
            consequence: consequence
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty()),
            non_identifiable: false,
            purposes,
            recipients,
            retention: vec![*self.pick(Retention::ALL)],
            data_groups: if data.is_empty() {
                vec![]
            } else {
                vec![DataGroup { base: None, data }]
            },
        }
    }

    fn policy(&mut self) -> Policy {
        let mut name = String::new();
        name.push((b'a' + self.index(26) as u8) as char);
        name.push_str(&self.chars(b"abcz019-", 12));
        let mut p = Policy::new(name);
        p.access = if self.index(2) == 1 {
            Some(*self.pick(Access::ALL))
        } else {
            None
        };
        p.statements = (0..1 + self.index(3)).map(|_| self.statement()).collect();
        p
    }
}

/// serialize ∘ parse is the identity on policies.
#[test]
fn policy_xml_roundtrip() {
    for seed in 0..96 {
        let mut rng = TestRng(seed);
        let policy = rng.policy();
        let xml = policy.to_xml();
        let back = Policy::parse(&xml).unwrap();
        assert_eq!(policy, back, "seed {seed}");
    }
}

/// Augmentation is idempotent and monotone (never removes data or
/// categories).
#[test]
fn augmentation_laws() {
    for seed in 0..96 {
        let mut rng = TestRng(seed);
        let policy = rng.policy();
        let once = augment_policy(&policy);
        assert!(is_augmented(&once), "seed {seed}");
        assert_eq!(&augment_policy(&once), &once, "seed {seed}");
        for (orig, aug) in policy.statements.iter().zip(&once.statements) {
            let orig_refs: Vec<&str> = orig
                .data_groups
                .iter()
                .flat_map(|g| g.data.iter())
                .map(|d| d.reference.as_str())
                .collect();
            let aug_refs: Vec<&str> = aug
                .data_groups
                .iter()
                .flat_map(|g| g.data.iter())
                .map(|d| d.reference.as_str())
                .collect();
            for r in orig_refs {
                assert!(aug_refs.contains(&r), "seed {seed}: lost {r}");
            }
        }
    }
}

/// Augmentation commutes with XML round-tripping.
#[test]
fn augmentation_commutes_with_xml() {
    for seed in 0..96 {
        let mut rng = TestRng(seed);
        let policy = rng.policy();
        let a = augment_policy(&Policy::parse(&policy.to_xml()).unwrap());
        let b = Policy::parse(&augment_policy(&policy).to_xml()).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

/// The compact policy of a policy equals the compact policy of its
/// augmented form (augmentation is already folded in).
#[test]
fn compact_policy_is_augmentation_stable() {
    for seed in 0..96 {
        let mut rng = TestRng(seed);
        let policy = rng.policy();
        let direct = CompactPolicy::from_policy(&policy);
        let via_augmented = CompactPolicy::from_policy(&augment_policy(&policy));
        let tokens = |cp: &CompactPolicy| {
            let mut t: Vec<String> = cp.tokens.iter().map(|t| t.as_str().to_string()).collect();
            t.sort();
            t
        };
        assert_eq!(tokens(&direct), tokens(&via_augmented), "seed {seed}");
    }
}

/// Compact headers round-trip.
#[test]
fn compact_header_roundtrip() {
    for seed in 0..96 {
        let mut rng = TestRng(seed);
        let policy = rng.policy();
        let cp = CompactPolicy::from_policy(&policy);
        assert_eq!(
            CompactPolicy::parse_header(&cp.to_header()),
            cp,
            "seed {seed}"
        );
    }
}

/// Wildcard matcher laws: exact strings match themselves; `*` matches
/// everything; a pattern matches what it generates.
#[test]
fn wildcard_laws() {
    for seed in 0..256 {
        let mut rng = TestRng(seed);
        let text = rng.chars(b"abcz/.", 20);
        let prefix = rng.chars(b"abcz/", 8);
        let suffix = rng.chars(b"abcz.", 8);
        assert!(wildcard_match(&text, &text), "seed {seed}");
        assert!(wildcard_match("*", &text), "seed {seed}");
        let pattern = format!("{prefix}*{suffix}");
        let generated = format!("{prefix}{text}{suffix}");
        assert!(
            wildcard_match(&pattern, &generated),
            "seed {seed}: {pattern} vs {generated}"
        );
    }
}

/// Validation accepts everything the generator produces whose unknown
/// data refs carry explicit categories.
#[test]
fn generated_policies_validate_conditionally() {
    for seed in 0..96 {
        let mut rng = TestRng(seed);
        let policy = rng.policy();
        let violations = p3p_policy::validate::validate(&policy);
        for v in &violations {
            // The only acceptable finding is an unknown data element
            // without categories (the generator may produce those).
            assert!(
                v.message.contains("not in the base data schema"),
                "seed {seed}: unexpected violation: {v}"
            );
        }
    }
}
