//! Custom data schemas (P3P 1.0 §5: DATASCHEMA / DATA-DEF).
//!
//! Besides the fixed base data schema, P3P lets a site publish its own
//! data schema — a `<DATASCHEMA>` document of `<DATA-DEF>` elements,
//! each assigning categories to a site-specific data element. Policies
//! then reference those elements through a DATA-GROUP `base` attribute.
//!
//! A custom schema can be *applied* to a policy: every data reference
//! it defines gains the schema's categories (as explicit CATEGORIES)
//! and set references expand to their leaves — the same normalization
//! the base schema gets via [`crate::augment`], done once so every
//! downstream engine sees identical policies.

use crate::error::PolicyError;
use crate::model::{DataRef, Policy};
use crate::vocab::Category;
use p3p_xmldom::{parse_element, Element, ElementBuilder};

/// One custom data element definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDef {
    /// Dotted path, e.g. `loyalty.card.number` (no leading `#`).
    pub path: String,
    /// Categories the site assigns to the element.
    pub categories: Vec<Category>,
    /// Optional human-readable description.
    pub short_description: Option<String>,
}

/// A parsed custom data schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataSchema {
    /// The schema's URI (`xml:base`-like identity), if declared.
    pub uri: Option<String>,
    pub defs: Vec<DataDef>,
}

impl DataSchema {
    /// Parse a `<DATASCHEMA>` document.
    pub fn parse(xml: &str) -> Result<DataSchema, PolicyError> {
        let root = parse_element(xml)?;
        Self::from_element(&root)
    }

    /// Parse from a `<DATASCHEMA>` element.
    pub fn from_element(root: &Element) -> Result<DataSchema, PolicyError> {
        if root.name.local != "DATASCHEMA" {
            return Err(PolicyError::invalid(
                root.name.local.clone(),
                "expected a DATASCHEMA element",
            ));
        }
        let mut schema = DataSchema {
            uri: root.attr_local("uri").map(str::to_string),
            defs: Vec::new(),
        };
        for def in root.find_children("DATA-DEF") {
            let path = def
                .attr_local("ref")
                .ok_or_else(|| PolicyError::invalid("DATA-DEF", "missing ref attribute"))?
                .trim_start_matches('#')
                .to_string();
            if path.is_empty() {
                return Err(PolicyError::invalid("DATA-DEF", "empty ref"));
            }
            let mut categories = Vec::new();
            for cats in def.find_children("CATEGORIES") {
                for c in cats.child_elements() {
                    let cat = Category::from_token(&c.name.local)?;
                    if !categories.contains(&cat) {
                        categories.push(cat);
                    }
                }
            }
            schema.defs.push(DataDef {
                path,
                categories,
                short_description: def.attr_local("short-description").map(str::to_string),
            });
        }
        Ok(schema)
    }

    /// Serialize back to a `<DATASCHEMA>` element.
    pub fn to_element(&self) -> Element {
        let mut b = ElementBuilder::new("DATASCHEMA");
        if let Some(uri) = &self.uri {
            b = b.attr("uri", uri.clone());
        }
        for def in &self.defs {
            let mut d = ElementBuilder::new("DATA-DEF").attr("ref", format!("#{}", def.path));
            if let Some(desc) = &def.short_description {
                d = d.attr("short-description", desc.clone());
            }
            if !def.categories.is_empty() {
                d = d.child(
                    ElementBuilder::new("CATEGORIES")
                        .leaves(def.categories.iter().map(|c| c.as_str())),
                );
            }
            b = b.child(d);
        }
        b.build()
    }

    /// Serialize to XML text.
    pub fn to_xml(&self) -> String {
        self.to_element().to_pretty_xml()
    }

    /// Does this schema define `reference` (as a leaf or interior
    /// node)?
    pub fn is_known(&self, reference: &str) -> bool {
        self.defs.iter().any(|d| {
            d.path == reference
                || (d.path.len() > reference.len()
                    && d.path.starts_with(reference)
                    && d.path.as_bytes()[reference.len()] == b'.')
        })
    }

    /// Categories this schema fixes for `reference` (union over covered
    /// leaves; ancestor fallback like the base schema).
    pub fn categories_of(&self, reference: &str) -> Vec<Category> {
        let mut out: Vec<Category> = Vec::new();
        let mut push_all = |cats: &[Category]| {
            for c in cats {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
        };
        let mut found = false;
        for d in &self.defs {
            let covered = d.path == reference
                || (d.path.len() > reference.len()
                    && d.path.starts_with(reference)
                    && d.path.as_bytes()[reference.len()] == b'.');
            if covered {
                found = true;
                push_all(&d.categories);
            }
        }
        if !found {
            for d in &self.defs {
                if reference.len() > d.path.len()
                    && reference.starts_with(&d.path)
                    && reference.as_bytes()[d.path.len()] == b'.'
                {
                    push_all(&d.categories);
                }
            }
        }
        out
    }

    /// The leaves covered by a reference.
    pub fn leaves_of(&self, reference: &str) -> Vec<&str> {
        self.defs
            .iter()
            .filter(|d| {
                d.path == reference
                    || (d.path.len() > reference.len()
                        && d.path.starts_with(reference)
                        && d.path.as_bytes()[reference.len()] == b'.')
            })
            .map(|d| d.path.as_str())
            .collect()
    }

    /// Normalize a policy against this schema: every DATA reference the
    /// schema defines gains its categories explicitly, and set
    /// references gain leaf expansions. The result no longer needs this
    /// schema — any engine can match it with base-schema knowledge
    /// alone.
    pub fn apply_to_policy(&self, policy: &Policy) -> Policy {
        let mut out = policy.clone();
        for stmt in &mut out.statements {
            for group in &mut stmt.data_groups {
                let mut present: Vec<String> =
                    group.data.iter().map(|d| d.reference.clone()).collect();
                let mut additions: Vec<DataRef> = Vec::new();
                for d in &mut group.data {
                    for c in self.categories_of(&d.reference) {
                        if !d.categories.contains(&c) {
                            d.categories.push(c);
                        }
                    }
                    let leaves = self.leaves_of(&d.reference);
                    let is_set =
                        leaves.len() > 1 || (leaves.len() == 1 && leaves[0] != d.reference);
                    if is_set {
                        for leaf in leaves {
                            if !present.iter().any(|p| p == leaf) {
                                present.push(leaf.to_string());
                                let mut leaf_ref = DataRef::new(leaf);
                                leaf_ref.optional = d.optional;
                                leaf_ref.categories = self.categories_of(leaf);
                                additions.push(leaf_ref);
                            }
                        }
                    }
                }
                group.data.extend(additions);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Statement;
    use crate::vocab::{Purpose, Recipient, Retention};

    const LOYALTY_XML: &str = r##"
<DATASCHEMA uri="http://store.example.com/schema">
  <DATA-DEF ref="#loyalty.card.number" short-description="Loyalty card number">
    <CATEGORIES><uniqueid/><purchase/></CATEGORIES>
  </DATA-DEF>
  <DATA-DEF ref="#loyalty.tier">
    <CATEGORIES><preference/></CATEGORIES>
  </DATA-DEF>
  <DATA-DEF ref="#loyalty.card.issued">
    <CATEGORIES><purchase/></CATEGORIES>
  </DATA-DEF>
</DATASCHEMA>"##;

    fn schema() -> DataSchema {
        DataSchema::parse(LOYALTY_XML).unwrap()
    }

    #[test]
    fn parses_defs_and_metadata() {
        let s = schema();
        assert_eq!(s.uri.as_deref(), Some("http://store.example.com/schema"));
        assert_eq!(s.defs.len(), 3);
        assert_eq!(s.defs[0].path, "loyalty.card.number");
        assert_eq!(
            s.defs[0].categories,
            vec![Category::UniqueId, Category::Purchase]
        );
        assert_eq!(
            s.defs[0].short_description.as_deref(),
            Some("Loyalty card number")
        );
    }

    #[test]
    fn roundtrips_through_xml() {
        let s = schema();
        let again = DataSchema::parse(&s.to_xml()).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn lookups_mirror_base_schema_semantics() {
        let s = schema();
        assert!(s.is_known("loyalty.card.number"));
        assert!(s.is_known("loyalty.card"));
        assert!(s.is_known("loyalty"));
        assert!(!s.is_known("loyal"));
        assert_eq!(
            s.categories_of("loyalty.card"),
            vec![Category::UniqueId, Category::Purchase]
        );
        assert_eq!(s.leaves_of("loyalty.card").len(), 2);
        // below-leaf fallback
        assert_eq!(
            s.categories_of("loyalty.tier.name"),
            vec![Category::Preference]
        );
    }

    #[test]
    fn apply_normalizes_policy() {
        let s = schema();
        let mut p = Policy::new("store");
        p.statements.push(Statement::simple(
            [Purpose::Current],
            [Recipient::Ours],
            Retention::StatedPurpose,
            [DataRef::new("loyalty.card")],
        ));
        let applied = s.apply_to_policy(&p);
        let refs: Vec<&str> = applied.statements[0].data_groups[0]
            .data
            .iter()
            .map(|d| d.reference.as_str())
            .collect();
        assert!(refs.contains(&"loyalty.card"));
        assert!(refs.contains(&"loyalty.card.number"));
        assert!(refs.contains(&"loyalty.card.issued"));
        let set_ref = &applied.statements[0].data_groups[0].data[0];
        assert!(set_ref.categories.contains(&Category::UniqueId));
        assert!(set_ref.categories.contains(&Category::Purchase));
    }

    #[test]
    fn apply_is_idempotent() {
        let s = schema();
        let mut p = Policy::new("store");
        p.statements.push(Statement::simple(
            [Purpose::Current],
            [Recipient::Ours],
            Retention::StatedPurpose,
            [DataRef::new("loyalty.card"), DataRef::new("user.name")],
        ));
        let once = s.apply_to_policy(&p);
        let twice = s.apply_to_policy(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn apply_ignores_unrelated_references() {
        let s = schema();
        let mut p = Policy::new("store");
        p.statements.push(Statement::simple(
            [Purpose::Current],
            [Recipient::Ours],
            Retention::StatedPurpose,
            [DataRef::new("user.bdate")],
        ));
        assert_eq!(s.apply_to_policy(&p), p);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(DataSchema::parse("<POLICY/>").is_err());
        assert!(DataSchema::parse("<DATASCHEMA><DATA-DEF/></DATASCHEMA>").is_err());
        assert!(DataSchema::parse(
            "<DATASCHEMA><DATA-DEF ref=\"#x\"><CATEGORIES><zap/></CATEGORIES></DATA-DEF></DATASCHEMA>"
        )
        .is_err());
    }

    #[test]
    fn duplicate_categories_are_deduped() {
        let s = DataSchema::parse(
            "<DATASCHEMA><DATA-DEF ref=\"#x\"><CATEGORIES><purchase/><purchase/></CATEGORIES></DATA-DEF></DATASCHEMA>",
        )
        .unwrap();
        assert_eq!(s.defs[0].categories, vec![Category::Purchase]);
    }
}
