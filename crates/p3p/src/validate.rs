//! Structural validation of P3P policies.
//!
//! The parser accepts any well-formed combination of known elements;
//! this module enforces the P3P 1.0 constraints a conforming policy must
//! satisfy before it is installed server-side (shredding assumes them,
//! e.g. "each STATEMENT can have only one RETENTION element" — paper
//! §5.4).

use crate::base_schema;
use crate::model::{Policy, Statement};

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending statement, when applicable.
    pub statement: Option<usize>,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.statement {
            Some(i) => write!(f, "statement {}: {}", i, self.message),
            None => f.write_str(&self.message),
        }
    }
}

/// Validate a policy; an empty vec means conforming.
pub fn validate(policy: &Policy) -> Vec<Violation> {
    let mut out = Vec::new();
    if policy.name.is_empty() {
        out.push(Violation {
            statement: None,
            message: "policy name must not be empty".to_string(),
        });
    }
    if policy.statements.is_empty() {
        out.push(Violation {
            statement: None,
            message: "policy must contain at least one STATEMENT".to_string(),
        });
    }
    for (i, stmt) in policy.statements.iter().enumerate() {
        for v in validate_statement(stmt) {
            out.push(Violation {
                statement: Some(i),
                ..v
            });
        }
    }
    out
}

fn validate_statement(stmt: &Statement) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |message: String| {
        out.push(Violation {
            statement: None,
            message,
        })
    };
    if !stmt.non_identifiable {
        if stmt.purposes.is_empty() {
            push("STATEMENT must declare at least one PURPOSE".to_string());
        }
        if stmt.recipients.is_empty() {
            push("STATEMENT must declare at least one RECIPIENT".to_string());
        }
        if stmt.retention.is_empty() {
            push("STATEMENT must declare a RETENTION".to_string());
        }
    }
    if stmt.retention.len() > 1 {
        push(format!(
            "RETENTION must have exactly one subelement, found {}",
            stmt.retention.len()
        ));
    }
    // Duplicate purposes within a statement are redundant at best.
    for (i, a) in stmt.purposes.iter().enumerate() {
        if stmt.purposes[..i].iter().any(|b| b.purpose == a.purpose) {
            push(format!("duplicate purpose `{}`", a.purpose));
        }
    }
    for (i, a) in stmt.recipients.iter().enumerate() {
        if stmt.recipients[..i]
            .iter()
            .any(|b| b.recipient == a.recipient)
        {
            push(format!("duplicate recipient `{}`", a.recipient));
        }
    }
    for group in &stmt.data_groups {
        // P3P 1.0 DTD: `<!ELEMENT DATA-GROUP (DATA+)>`. An empty group
        // is also unrepresentable in the optimized schema, where a
        // DATA-GROUP's existence is witnessed only by its data rows.
        if group.data.is_empty() {
            push("DATA-GROUP must contain at least one DATA element".to_string());
        }
        for d in &group.data {
            let in_base = !group.base.as_deref().is_none_or(str::is_empty);
            // Only references into the base schema (base attribute absent)
            // can be checked against it.
            if group.base.is_none()
                && !base_schema::is_known(&d.reference)
                && d.categories.is_empty()
            {
                push(format!(
                    "data element `{}` is not in the base data schema and declares no categories",
                    d.reference
                ));
            }
            let _ = in_base;
            if d.reference.is_empty() {
                push("DATA ref must not be empty".to_string());
            }
        }
    }
    out
}

/// Convenience: `Ok(())` when conforming, `Err` with findings otherwise.
pub fn check(policy: &Policy) -> Result<(), Vec<Violation>> {
    let v = validate(policy);
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{volga_policy, DataGroup, DataRef, PurposeUse, RecipientUse};
    use crate::vocab::{Purpose, Recipient, Retention};

    #[test]
    fn volga_is_conforming() {
        assert!(check(&volga_policy()).is_ok());
    }

    #[test]
    fn empty_policy_is_flagged() {
        let p = Policy::new("p");
        let v = validate(&p);
        assert!(v
            .iter()
            .any(|v| v.message.contains("at least one STATEMENT")));
    }

    #[test]
    fn empty_name_is_flagged() {
        let p = Policy::new("");
        assert!(validate(&p).iter().any(|v| v.message.contains("name")));
    }

    #[test]
    fn statement_missing_parts_flagged() {
        let mut p = Policy::new("p");
        p.statements.push(Statement::default());
        let v = validate(&p);
        assert_eq!(v.iter().filter(|v| v.statement == Some(0)).count(), 3);
    }

    #[test]
    fn non_identifiable_statement_needs_nothing() {
        let mut p = Policy::new("p");
        p.statements.push(Statement {
            non_identifiable: true,
            ..Statement::default()
        });
        assert!(check(&p).is_ok());
    }

    #[test]
    fn multiple_retention_flagged() {
        let mut p = volga_policy();
        p.statements[0].retention.push(Retention::Indefinitely);
        assert!(validate(&p)
            .iter()
            .any(|v| v.message.contains("exactly one subelement")));
    }

    #[test]
    fn duplicate_purpose_flagged() {
        let mut p = volga_policy();
        p.statements[0]
            .purposes
            .push(PurposeUse::always(Purpose::Current));
        assert!(validate(&p)
            .iter()
            .any(|v| v.message.contains("duplicate purpose")));
    }

    #[test]
    fn duplicate_recipient_flagged() {
        let mut p = volga_policy();
        p.statements[0]
            .recipients
            .push(RecipientUse::always(Recipient::Ours));
        assert!(validate(&p)
            .iter()
            .any(|v| v.message.contains("duplicate recipient")));
    }

    #[test]
    fn unknown_data_without_categories_flagged() {
        let mut p = volga_policy();
        p.statements[0].data_groups.push(DataGroup {
            base: None,
            data: vec![DataRef::new("custom.unknown.thing")],
        });
        assert!(validate(&p)
            .iter()
            .any(|v| v.message.contains("not in the base data schema")));
    }

    #[test]
    fn unknown_data_with_categories_ok() {
        let mut p = volga_policy();
        p.statements[0].data_groups.push(DataGroup {
            base: None,
            data: vec![DataRef::new("custom.unknown.thing")
                .with_categories([crate::vocab::Category::Preference])],
        });
        assert!(check(&p).is_ok());
    }

    #[test]
    fn violation_display_mentions_statement() {
        let v = Violation {
            statement: Some(2),
            message: "boom".to_string(),
        };
        assert_eq!(v.to_string(), "statement 2: boom");
    }
}
