//! # p3p-policy — the P3P 1.0 data model
//!
//! The Platform for Privacy Preferences (P3P 1.0, W3C Recommendation,
//! April 2002) lets a web site publish its data-collection and data-use
//! practices as a machine-readable XML *policy*. This crate models that
//! policy language:
//!
//! * [`vocab`] — the closed P3P vocabularies: 12 [`vocab::Purpose`]s,
//!   6 [`vocab::Recipient`]s, 5 [`vocab::Retention`]s, 17
//!   [`vocab::Category`]s, the `required` attribute
//!   ([`vocab::Required`]), and [`vocab::Access`].
//! * [`model`] — [`model::Policy`], [`model::Statement`],
//!   [`model::DataGroup`], [`model::DataRef`], [`model::Entity`], etc.
//! * [`base_schema`] — the P3P *base data schema* (`user.name.given`,
//!   `dynamic.miscdata`, …) with the category assignments the
//!   specification fixes for each data element. Category augmentation of
//!   `DATA` elements from this schema is the step the paper's profiling
//!   found to dominate the native APPEL engine's matching cost (§6.3.2).
//! * [`parse`] / [`serialize`] — XML ⇄ model, both directions.
//! * [`mod@reference`] — P3P reference files (META / POLICY-REF with
//!   INCLUDE/EXCLUDE URI patterns) and the URI → policy lookup (§2.3).
//! * [`compact`] — compact policies, the abbreviated header encoding
//!   used by IE6's cookie filtering (§3.2).
//! * [`validate`] — structural well-formedness checks for policies.
//!
//! ## Quick example
//!
//! ```
//! use p3p_policy::model::Policy;
//!
//! let xml = r##"
//! <POLICY name="minimal">
//!   <STATEMENT>
//!     <PURPOSE><current/></PURPOSE>
//!     <RECIPIENT><ours/></RECIPIENT>
//!     <RETENTION><stated-purpose/></RETENTION>
//!     <DATA-GROUP><DATA ref="#user.name"/></DATA-GROUP>
//!   </STATEMENT>
//! </POLICY>"##;
//! let policy = Policy::parse(xml).unwrap();
//! assert_eq!(policy.statements.len(), 1);
//! assert_eq!(policy.statements[0].purposes[0].purpose.as_str(), "current");
//! ```

pub mod augment;
pub mod base_schema;
pub mod compact;
pub mod dataschema;
pub mod error;
pub mod model;
pub mod parse;
pub mod reference;
pub mod serialize;
pub mod validate;
pub mod vocab;

pub use dataschema::{DataDef, DataSchema};
pub use error::PolicyError;
pub use model::{DataGroup, DataRef, Entity, Policy, PurposeUse, RecipientUse, Statement};
pub use reference::{PolicyRef, ReferenceFile};
pub use vocab::{Access, Category, Purpose, Recipient, Required, Retention};
