//! Errors raised while parsing or validating P3P documents.

use std::fmt;

/// An error produced while turning XML into the P3P model or while
/// validating a model instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The underlying XML was not well-formed.
    Xml(p3p_xmldom::ParseError),
    /// The XML was well-formed but not valid P3P.
    Invalid {
        /// Which element the problem was found in.
        context: String,
        /// What was wrong.
        message: String,
    },
    /// A vocabulary token was not recognised (e.g. an unknown purpose).
    UnknownToken {
        /// Vocabulary name, e.g. `PURPOSE`.
        vocabulary: &'static str,
        /// The offending token.
        token: String,
    },
}

impl PolicyError {
    pub(crate) fn invalid(context: impl Into<String>, message: impl Into<String>) -> Self {
        PolicyError::Invalid {
            context: context.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Xml(e) => write!(f, "{e}"),
            PolicyError::Invalid { context, message } => {
                write!(f, "invalid P3P in <{context}>: {message}")
            }
            PolicyError::UnknownToken { vocabulary, token } => {
                write!(f, "unknown {vocabulary} token `{token}`")
            }
        }
    }
}

impl std::error::Error for PolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolicyError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<p3p_xmldom::ParseError> for PolicyError {
    fn from(e: p3p_xmldom::ParseError) -> Self {
        PolicyError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let inv = PolicyError::invalid("STATEMENT", "missing PURPOSE");
        assert_eq!(
            inv.to_string(),
            "invalid P3P in <STATEMENT>: missing PURPOSE"
        );
        let unk = PolicyError::UnknownToken {
            vocabulary: "PURPOSE",
            token: "frobnicate".into(),
        };
        assert_eq!(unk.to_string(), "unknown PURPOSE token `frobnicate`");
    }

    #[test]
    fn xml_errors_convert() {
        let xml_err = p3p_xmldom::parse_element("<A").unwrap_err();
        let err: PolicyError = xml_err.into();
        assert!(matches!(err, PolicyError::Xml(_)));
    }
}
