//! Serializing the P3P object model back to XML.
//!
//! The output parses back to an identical model (see the round-trip
//! tests in [`crate::parse`] and the property tests), which is what the
//! reconstruction view of the server-centric architecture relies on.

use crate::model::{DataGroup, DataRef, Dispute, Policy, Statement};
use crate::vocab::Required;
use p3p_xmldom::{Element, ElementBuilder};

/// Build the `<POLICY>` element for a policy.
pub fn policy_to_element(policy: &Policy) -> Element {
    let mut b = ElementBuilder::new("POLICY").attr("name", policy.name.clone());
    if let Some(uri) = &policy.discuri {
        b = b.attr("discuri", uri.clone());
    }
    if let Some(uri) = &policy.opturi {
        b = b.attr("opturi", uri.clone());
    }
    if let Some(lang) = &policy.lang {
        b = b.attr("xml:lang", lang.clone());
    }
    if let Some(entity) = &policy.entity {
        let mut group = ElementBuilder::new("DATA-GROUP");
        let mut wrote_name = false;
        for (reference, value) in &entity.fields {
            group = group.child(
                ElementBuilder::new("DATA")
                    .attr("ref", format!("#{reference}"))
                    .text(value.clone()),
            );
            wrote_name |= reference == "business.name";
        }
        if !wrote_name {
            if let Some(name) = &entity.business_name {
                group = group.child(
                    ElementBuilder::new("DATA")
                        .attr("ref", "#business.name")
                        .text(name.clone()),
                );
            }
        }
        b = b.child(ElementBuilder::new("ENTITY").child(group));
    }
    if let Some(access) = policy.access {
        b = b.child(ElementBuilder::new("ACCESS").child(ElementBuilder::new(access.as_str())));
    }
    if !policy.disputes.is_empty() {
        let mut dg = ElementBuilder::new("DISPUTES-GROUP");
        for d in &policy.disputes {
            dg = dg.child_element(dispute_to_element(d));
        }
        b = b.child(dg);
    }
    for stmt in &policy.statements {
        b = b.child_element(statement_to_element(stmt));
    }
    b.build()
}

fn dispute_to_element(d: &Dispute) -> Element {
    let mut b = ElementBuilder::new("DISPUTES").attr("resolution-type", d.resolution_type.as_str());
    if let Some(service) = &d.service {
        b = b.attr("service", service.clone());
    }
    if let Some(desc) = &d.description {
        b = b.child(ElementBuilder::new("LONG-DESCRIPTION").text(desc.clone()));
    }
    if !d.remedies.is_empty() {
        b = b.child(ElementBuilder::new("REMEDIES").leaves(d.remedies.iter().map(|r| r.as_str())));
    }
    b.build()
}

/// Build the `<STATEMENT>` element for a statement.
pub fn statement_to_element(stmt: &Statement) -> Element {
    let mut b = ElementBuilder::new("STATEMENT");
    if let Some(consequence) = &stmt.consequence {
        b = b.child(ElementBuilder::new("CONSEQUENCE").text(consequence.clone()));
    }
    if stmt.non_identifiable {
        b = b.child(ElementBuilder::new("NON-IDENTIFIABLE"));
    }
    if !stmt.purposes.is_empty() {
        let mut p = ElementBuilder::new("PURPOSE");
        for pu in &stmt.purposes {
            let mut e = ElementBuilder::new(pu.purpose.as_str());
            if pu.required != Required::Always {
                e = e.attr("required", pu.required.as_str());
            }
            p = p.child(e);
        }
        b = b.child(p);
    }
    if !stmt.recipients.is_empty() {
        let mut r = ElementBuilder::new("RECIPIENT");
        for ru in &stmt.recipients {
            let mut e = ElementBuilder::new(ru.recipient.as_str());
            if ru.required != Required::Always {
                e = e.attr("required", ru.required.as_str());
            }
            r = r.child(e);
        }
        b = b.child(r);
    }
    if !stmt.retention.is_empty() {
        b = b.child(
            ElementBuilder::new("RETENTION").leaves(stmt.retention.iter().map(|r| r.as_str())),
        );
    }
    for group in &stmt.data_groups {
        b = b.child_element(data_group_to_element(group));
    }
    b.build()
}

fn data_group_to_element(group: &DataGroup) -> Element {
    let mut b = ElementBuilder::new("DATA-GROUP");
    if let Some(base) = &group.base {
        b = b.attr("base", base.clone());
    }
    for d in &group.data {
        b = b.child_element(data_to_element(d));
    }
    b.build()
}

/// Build a `<DATA>` element (shared with the reconstruction view).
pub fn data_to_element(d: &DataRef) -> Element {
    let mut b = ElementBuilder::new("DATA").attr("ref", d.href());
    if d.optional {
        b = b.attr("optional", "yes");
    }
    if !d.categories.is_empty() {
        b = b.child(
            ElementBuilder::new("CATEGORIES").leaves(d.categories.iter().map(|c| c.as_str())),
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::volga_policy;
    use crate::vocab::{Category, Purpose};

    #[test]
    fn volga_serializes_with_expected_markers() {
        let xml = volga_policy().to_xml();
        for marker in [
            "<POLICY name=\"volga\"",
            "<current/>",
            "<ours/>",
            "<same/>",
            "<stated-purpose/>",
            "<individual-decision required=\"opt-in\"/>",
            "<contact required=\"opt-in\"/>",
            "ref=\"#dynamic.miscdata\"",
            "<purchase/>",
            "<business-practices/>",
        ] {
            assert!(xml.contains(marker), "missing {marker} in:\n{xml}");
        }
    }

    #[test]
    fn always_required_is_omitted() {
        let xml = volga_policy().to_xml();
        assert!(!xml.contains("required=\"always\""));
    }

    #[test]
    fn data_element_includes_categories() {
        let d = DataRef::new("dynamic.miscdata").with_categories([Category::Purchase]);
        let e = data_to_element(&d);
        assert_eq!(e.attr("ref"), Some("#dynamic.miscdata"));
        assert!(e
            .find_child("CATEGORIES")
            .unwrap()
            .find_child("purchase")
            .is_some());
    }

    #[test]
    fn optional_data_serializes_attribute() {
        let d = DataRef::new("user.bdate").optional();
        assert_eq!(data_to_element(&d).attr("optional"), Some("yes"));
    }

    #[test]
    fn statement_orders_children_canonically() {
        let p = volga_policy();
        let e = statement_to_element(&p.statements[0]);
        let names: Vec<_> = e.child_elements().map(|c| c.name.local.clone()).collect();
        assert_eq!(
            names,
            [
                "CONSEQUENCE",
                "PURPOSE",
                "RECIPIENT",
                "RETENTION",
                "DATA-GROUP"
            ]
        );
    }

    #[test]
    fn empty_policy_serializes_minimal() {
        let p = Policy::new("empty");
        let e = policy_to_element(&p);
        assert_eq!(e.child_elements().count(), 0);
        assert_eq!(e.attr("name"), Some("empty"));
    }

    #[test]
    fn purpose_vocabulary_tokens_serialize_exactly() {
        let mut p = Policy::new("p");
        p.statements.push(Statement::simple(
            [Purpose::PseudoAnalysis, Purpose::OtherPurpose],
            [],
            crate::vocab::Retention::NoRetention,
            [],
        ));
        let xml = p.to_xml();
        assert!(xml.contains("<pseudo-analysis/>"));
        assert!(xml.contains("<other-purpose/>"));
    }
}
