//! The P3P policy object model.
//!
//! Mirrors the element structure of a P3P 1.0 POLICY document
//! (paper §2.1): a policy carries identity/ENTITY information, an ACCESS
//! declaration, optional DISPUTES, and a sequence of STATEMENTs; each
//! statement binds purposes, recipients, a retention, and the data
//! groups collected under those terms.

use crate::error::PolicyError;
use crate::vocab::{
    Access, Category, Purpose, Recipient, Remedy, Required, ResolutionType, Retention,
};

/// A complete P3P policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// The `name` attribute — unique within a site's policies.
    pub name: String,
    /// The `discuri` attribute: URI of the human-readable policy.
    pub discuri: Option<String>,
    /// The `opturi` attribute: URI for opt-in/opt-out instructions.
    pub opturi: Option<String>,
    /// The legal entity making the statement (required by P3P; optional
    /// here so fragments can be modelled).
    pub entity: Option<Entity>,
    /// The ACCESS declaration.
    pub access: Option<Access>,
    /// Dispute resolution procedures.
    pub disputes: Vec<Dispute>,
    /// The policy's statements, in document order.
    pub statements: Vec<Statement>,
    /// The `xml:lang` of human-readable fields, if declared.
    pub lang: Option<String>,
}

impl Policy {
    /// A policy with just a name; populate the rest via the fields.
    pub fn new(name: impl Into<String>) -> Self {
        Policy {
            name: name.into(),
            discuri: None,
            opturi: None,
            entity: None,
            access: None,
            disputes: Vec::new(),
            statements: Vec::new(),
            lang: None,
        }
    }

    /// Parse a policy from XML text. See [`crate::parse`].
    pub fn parse(xml: &str) -> Result<Policy, PolicyError> {
        crate::parse::parse_policy_str(xml)
    }

    /// Serialize to XML text. See [`crate::serialize`].
    pub fn to_xml(&self) -> String {
        crate::serialize::policy_to_element(self).to_pretty_xml()
    }

    /// All purposes used anywhere in the policy (with duplicates).
    pub fn all_purposes(&self) -> impl Iterator<Item = &PurposeUse> {
        self.statements.iter().flat_map(|s| s.purposes.iter())
    }

    /// All data references anywhere in the policy.
    pub fn all_data_refs(&self) -> impl Iterator<Item = &DataRef> {
        self.statements
            .iter()
            .flat_map(|s| s.data_groups.iter())
            .flat_map(|g| g.data.iter())
    }

    /// Total number of DATA elements in the policy.
    pub fn data_element_count(&self) -> usize {
        self.all_data_refs().count()
    }
}

/// The legal entity behind a policy (ENTITY element).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Entity {
    /// `business.name` in the entity's DATA-GROUP.
    pub business_name: Option<String>,
    /// Additional `(ref, value)` pairs from the entity description
    /// (e.g. `#business.contact-info.online.email` → address).
    pub fields: Vec<(String, String)>,
}

impl Entity {
    /// An entity carrying only a business name.
    pub fn named(name: impl Into<String>) -> Self {
        let name = name.into();
        Entity {
            business_name: Some(name.clone()),
            fields: vec![("business.name".to_string(), name)],
        }
    }
}

/// A DISPUTES element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispute {
    pub resolution_type: ResolutionType,
    /// The `service` attribute: URI of the resolution service.
    pub service: Option<String>,
    /// Human-readable description.
    pub description: Option<String>,
    /// Remedies offered.
    pub remedies: Vec<Remedy>,
}

/// A STATEMENT: one unit of "we collect these data for these purposes".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Statement {
    /// Human-readable CONSEQUENCE text, if any.
    pub consequence: Option<String>,
    /// Marks statements about non-identifiable data.
    pub non_identifiable: bool,
    /// Purposes (each with its `required` setting).
    pub purposes: Vec<PurposeUse>,
    /// Recipients (each with its `required` setting).
    pub recipients: Vec<RecipientUse>,
    /// Retention values. P3P allows exactly one subelement; kept as a
    /// vec so invalid documents can be represented before validation.
    pub retention: Vec<Retention>,
    /// The data groups collected under this statement.
    pub data_groups: Vec<DataGroup>,
}

impl Statement {
    /// A statement with the given parts and `always` requirements.
    pub fn simple(
        purposes: impl IntoIterator<Item = Purpose>,
        recipients: impl IntoIterator<Item = Recipient>,
        retention: Retention,
        data_refs: impl IntoIterator<Item = DataRef>,
    ) -> Self {
        Statement {
            consequence: None,
            non_identifiable: false,
            purposes: purposes.into_iter().map(PurposeUse::always).collect(),
            recipients: recipients.into_iter().map(RecipientUse::always).collect(),
            retention: vec![retention],
            data_groups: vec![DataGroup {
                base: None,
                data: data_refs.into_iter().collect(),
            }],
        }
    }
}

/// A purpose together with its `required` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PurposeUse {
    pub purpose: Purpose,
    pub required: Required,
}

impl PurposeUse {
    /// The default: `required="always"`.
    pub fn always(purpose: Purpose) -> Self {
        PurposeUse {
            purpose,
            required: Required::Always,
        }
    }

    /// An opt-in purpose (explicit consent needed), as in the second
    /// statement of the paper's Volga policy.
    pub fn opt_in(purpose: Purpose) -> Self {
        PurposeUse {
            purpose,
            required: Required::OptIn,
        }
    }

    /// An opt-out purpose.
    pub fn opt_out(purpose: Purpose) -> Self {
        PurposeUse {
            purpose,
            required: Required::OptOut,
        }
    }
}

/// A recipient together with its `required` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecipientUse {
    pub recipient: Recipient,
    pub required: Required,
}

impl RecipientUse {
    /// The default: `required="always"`.
    pub fn always(recipient: Recipient) -> Self {
        RecipientUse {
            recipient,
            required: Required::Always,
        }
    }
}

/// A DATA-GROUP: a set of data references sharing an optional `base`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataGroup {
    /// The `base` attribute (defaults to the P3P base data schema URI
    /// when absent; `Some("")` denotes an explicit empty base).
    pub base: Option<String>,
    pub data: Vec<DataRef>,
}

/// A DATA element: a reference into a data schema plus explicit
/// categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRef {
    /// The `ref` attribute *without* the leading `#`,
    /// e.g. `user.home-info.postal`.
    pub reference: String,
    /// The `optional` attribute (`yes` ⇒ true).
    pub optional: bool,
    /// Categories declared explicitly in the policy. Variable-category
    /// elements such as `dynamic.miscdata` must declare these; fixed
    /// elements inherit them from the base data schema instead.
    pub categories: Vec<Category>,
}

impl DataRef {
    /// A non-optional reference with no explicit categories.
    pub fn new(reference: impl Into<String>) -> Self {
        DataRef {
            reference: reference.into(),
            optional: false,
            categories: Vec::new(),
        }
    }

    /// Attach explicit categories.
    pub fn with_categories(mut self, categories: impl IntoIterator<Item = Category>) -> Self {
        self.categories.extend(categories);
        self
    }

    /// Mark the element optional.
    pub fn optional(mut self) -> Self {
        self.optional = true;
        self
    }

    /// The reference in `#`-prefixed form as it appears in XML.
    pub fn href(&self) -> String {
        format!("#{}", self.reference)
    }

    /// The effective categories: explicit ones plus those the base data
    /// schema fixes for this element. This is exactly the augmentation
    /// the paper performs at shred time (server-centric) or per match
    /// (native APPEL engine).
    pub fn effective_categories(&self) -> Vec<Category> {
        let mut cats = self.categories.clone();
        for c in crate::base_schema::categories_of(&self.reference) {
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        cats
    }
}

/// Construct the bookseller policy of the paper's Figure 1.
///
/// Statement 1: name, postal address, and miscellaneous purchase data
/// used to complete the current transaction (recipients: ours/same,
/// retention: stated-purpose). Statement 2: email and purchase data used
/// for opt-in individualized recommendations (recipient: ours,
/// retention: business-practices).
pub fn volga_policy() -> Policy {
    let mut policy = Policy::new("volga");
    policy.entity = Some(Entity::named("Volga Booksellers"));
    policy.access = Some(Access::ContactAndOther);
    policy.discuri = Some("http://volga.example.com/privacy.html".to_string());

    let statement1 = Statement {
        consequence: Some("We use this information to complete your current purchase.".to_string()),
        non_identifiable: false,
        purposes: vec![PurposeUse::always(Purpose::Current)],
        recipients: vec![
            RecipientUse::always(Recipient::Ours),
            RecipientUse::always(Recipient::Same),
        ],
        retention: vec![Retention::StatedPurpose],
        data_groups: vec![DataGroup {
            base: None,
            data: vec![
                DataRef::new("user.name"),
                DataRef::new("user.home-info.postal"),
                DataRef::new("dynamic.miscdata").with_categories([Category::Purchase]),
            ],
        }],
    };

    let statement2 = Statement {
        consequence: Some(
            "With your consent we email personalized book recommendations.".to_string(),
        ),
        non_identifiable: false,
        purposes: vec![
            PurposeUse::opt_in(Purpose::IndividualDecision),
            PurposeUse::opt_in(Purpose::Contact),
        ],
        recipients: vec![RecipientUse::always(Recipient::Ours)],
        retention: vec![Retention::BusinessPractices],
        data_groups: vec![DataGroup {
            base: None,
            data: vec![
                DataRef::new("user.home-info.online.email"),
                DataRef::new("dynamic.miscdata").with_categories([Category::Purchase]),
            ],
        }],
    };

    policy.statements = vec![statement1, statement2];
    policy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volga_matches_figure_1_structure() {
        let p = volga_policy();
        assert_eq!(p.statements.len(), 2);
        let s1 = &p.statements[0];
        assert_eq!(s1.purposes, vec![PurposeUse::always(Purpose::Current)]);
        assert_eq!(s1.recipients.len(), 2);
        assert_eq!(s1.retention, vec![Retention::StatedPurpose]);
        assert_eq!(s1.data_groups[0].data.len(), 3);

        let s2 = &p.statements[1];
        assert!(s2.purposes.iter().all(|pu| pu.required == Required::OptIn));
        assert_eq!(s2.retention, vec![Retention::BusinessPractices]);
    }

    #[test]
    fn data_ref_href_form() {
        assert_eq!(DataRef::new("user.name").href(), "#user.name");
    }

    #[test]
    fn effective_categories_union_explicit_and_base_schema() {
        // user.home-info.postal is `physical` + `demographic` in the base
        // schema; an explicit extra category must be preserved.
        let d = DataRef::new("user.home-info.postal").with_categories([Category::Preference]);
        let cats = d.effective_categories();
        assert!(cats.contains(&Category::Preference));
        assert!(cats.contains(&Category::Physical));
        // no duplicates even if explicit repeats a base category
        let d2 = DataRef::new("user.home-info.postal").with_categories([Category::Physical]);
        let cats2 = d2.effective_categories();
        assert_eq!(
            cats2.iter().filter(|c| **c == Category::Physical).count(),
            1
        );
    }

    #[test]
    fn statement_simple_defaults_to_always() {
        let s = Statement::simple(
            [Purpose::Current],
            [Recipient::Ours],
            Retention::NoRetention,
            [DataRef::new("user.name")],
        );
        assert_eq!(s.purposes[0].required, Required::Always);
        assert_eq!(s.recipients[0].required, Required::Always);
    }

    #[test]
    fn policy_iterators_cover_all_statements() {
        let p = volga_policy();
        assert_eq!(p.all_purposes().count(), 3);
        assert_eq!(p.data_element_count(), 5);
    }

    #[test]
    fn purpose_use_constructors() {
        assert_eq!(
            PurposeUse::opt_out(Purpose::Contact).required,
            Required::OptOut
        );
        assert_eq!(
            PurposeUse::opt_in(Purpose::Contact).required,
            Required::OptIn
        );
    }
}
