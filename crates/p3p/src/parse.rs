//! Parsing P3P policy XML into the object model.
//!
//! Accepts both plain and prefixed element names (`POLICY` and
//! `p3p:POLICY`), and either a bare `<POLICY>` document or a
//! `<POLICIES>` wrapper containing several.

use crate::error::PolicyError;
use crate::model::{
    DataGroup, DataRef, Dispute, Entity, Policy, PurposeUse, RecipientUse, Statement,
};
use crate::vocab::{
    Access, Category, Purpose, Recipient, Remedy, Required, ResolutionType, Retention,
};
use p3p_xmldom::{parse_element, Element};

/// Parse one `<POLICY>` document from text.
pub fn parse_policy_str(xml: &str) -> Result<Policy, PolicyError> {
    let root = parse_element(xml)?;
    parse_policy(&root)
}

/// Parse a `<POLICIES>` document (or a single `<POLICY>`) from text.
pub fn parse_policies_str(xml: &str) -> Result<Vec<Policy>, PolicyError> {
    let root = parse_element(xml)?;
    if root.name.local == "POLICIES" {
        root.find_children("POLICY").map(parse_policy).collect()
    } else {
        Ok(vec![parse_policy(&root)?])
    }
}

/// Parse a `<POLICY>` element.
pub fn parse_policy(root: &Element) -> Result<Policy, PolicyError> {
    if root.name.local != "POLICY" {
        return Err(PolicyError::invalid(
            root.name.local.clone(),
            "expected a POLICY element",
        ));
    }
    let mut policy = Policy::new(root.attr_local("name").unwrap_or("unnamed"));
    policy.discuri = root.attr_local("discuri").map(str::to_string);
    policy.opturi = root.attr_local("opturi").map(str::to_string);
    policy.lang = root.attr_local("lang").map(str::to_string);

    for child in root.child_elements() {
        match child.name.local.as_str() {
            "ENTITY" => policy.entity = Some(parse_entity(child)?),
            "ACCESS" => policy.access = Some(parse_access(child)?),
            "DISPUTES-GROUP" => {
                for d in child.find_children("DISPUTES") {
                    policy.disputes.push(parse_dispute(d)?);
                }
            }
            "STATEMENT" => policy.statements.push(parse_statement(child)?),
            "EXTENSION" | "TEST" => {} // tolerated, ignored
            other => {
                return Err(PolicyError::invalid(
                    "POLICY",
                    format!("unexpected child element <{other}>"),
                ))
            }
        }
    }
    Ok(policy)
}

fn parse_entity(elem: &Element) -> Result<Entity, PolicyError> {
    let mut entity = Entity::default();
    // ENTITY contains a DATA-GROUP of business.* DATA elements with text
    // values.
    if let Some(group) = elem.find_child("DATA-GROUP") {
        for data in group.find_children("DATA") {
            let reference = data
                .attr_local("ref")
                .ok_or_else(|| PolicyError::invalid("ENTITY/DATA", "missing ref attribute"))?
                .trim_start_matches('#')
                .to_string();
            let value = data.text();
            if reference == "business.name" {
                entity.business_name = Some(value.clone());
            }
            entity.fields.push((reference, value));
        }
    }
    Ok(entity)
}

fn parse_access(elem: &Element) -> Result<Access, PolicyError> {
    let child = elem
        .child_elements()
        .next()
        .ok_or_else(|| PolicyError::invalid("ACCESS", "missing access value element"))?;
    Access::from_token(&child.name.local)
}

fn parse_dispute(elem: &Element) -> Result<Dispute, PolicyError> {
    let resolution_type = elem
        .attr_local("resolution-type")
        .ok_or_else(|| PolicyError::invalid("DISPUTES", "missing resolution-type"))
        .and_then(ResolutionType::from_token)?;
    let mut remedies = Vec::new();
    if let Some(rem) = elem.find_child("REMEDIES") {
        for r in rem.child_elements() {
            remedies.push(Remedy::from_token(&r.name.local)?);
        }
    }
    Ok(Dispute {
        resolution_type,
        service: elem.attr_local("service").map(str::to_string),
        description: elem.find_child("LONG-DESCRIPTION").map(|d| d.text()),
        remedies,
    })
}

/// Parse a `<STATEMENT>` element.
pub fn parse_statement(elem: &Element) -> Result<Statement, PolicyError> {
    let mut stmt = Statement::default();
    for child in elem.child_elements() {
        match child.name.local.as_str() {
            "CONSEQUENCE" => stmt.consequence = Some(child.text()),
            "NON-IDENTIFIABLE" => stmt.non_identifiable = true,
            "PURPOSE" => {
                for p in child.child_elements() {
                    stmt.purposes.push(PurposeUse {
                        purpose: Purpose::from_token(&p.name.local)?,
                        required: parse_required(p)?,
                    });
                }
            }
            "RECIPIENT" => {
                for r in child.child_elements() {
                    stmt.recipients.push(RecipientUse {
                        recipient: Recipient::from_token(&r.name.local)?,
                        required: parse_required(r)?,
                    });
                }
            }
            "RETENTION" => {
                for r in child.child_elements() {
                    stmt.retention.push(Retention::from_token(&r.name.local)?);
                }
            }
            "DATA-GROUP" => stmt.data_groups.push(parse_data_group(child)?),
            "EXTENSION" => {}
            other => {
                return Err(PolicyError::invalid(
                    "STATEMENT",
                    format!("unexpected child element <{other}>"),
                ))
            }
        }
    }
    Ok(stmt)
}

fn parse_required(elem: &Element) -> Result<Required, PolicyError> {
    match elem.attr_local("required") {
        // "By default, the value of the required attribute is set to
        //  always" — paper §2.1.
        None => Ok(Required::Always),
        Some(v) => Required::from_token(v),
    }
}

fn parse_data_group(elem: &Element) -> Result<DataGroup, PolicyError> {
    let mut group = DataGroup {
        base: elem.attr_local("base").map(str::to_string),
        data: Vec::new(),
    };
    for data in elem.find_children("DATA") {
        group.data.push(parse_data(data)?);
    }
    Ok(group)
}

fn parse_data(elem: &Element) -> Result<DataRef, PolicyError> {
    let reference = elem
        .attr_local("ref")
        .ok_or_else(|| PolicyError::invalid("DATA", "missing ref attribute"))?
        .trim_start_matches('#')
        .to_string();
    let optional = matches!(elem.attr_local("optional"), Some("yes"));
    let mut categories = Vec::new();
    for cats in elem.find_children("CATEGORIES") {
        for c in cats.child_elements() {
            categories.push(Category::from_token(&c.name.local)?);
        }
    }
    Ok(DataRef {
        reference,
        optional,
        categories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::volga_policy;

    const VOLGA_XML: &str = r##"
<POLICY name="volga" discuri="http://volga.example.com/privacy.html">
  <ENTITY>
    <DATA-GROUP>
      <DATA ref="#business.name">Volga Booksellers</DATA>
      <DATA ref="#business.contact-info.online.email">privacy@volga.example.com</DATA>
    </DATA-GROUP>
  </ENTITY>
  <ACCESS><contact-and-other/></ACCESS>
  <STATEMENT>
    <PURPOSE><current/></PURPOSE>
    <RECIPIENT><ours/><same/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.name"/>
      <DATA ref="#user.home-info.postal"/>
      <DATA ref="#dynamic.miscdata">
        <CATEGORIES><purchase/></CATEGORIES>
      </DATA>
    </DATA-GROUP>
  </STATEMENT>
  <STATEMENT>
    <PURPOSE>
      <individual-decision required="opt-in"/>
      <contact required="opt-in"/>
    </PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><business-practices/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.online.email"/>
      <DATA ref="#dynamic.miscdata">
        <CATEGORIES><purchase/></CATEGORIES>
      </DATA>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>"##;

    #[test]
    fn parses_figure_1_policy() {
        let p = parse_policy_str(VOLGA_XML).unwrap();
        assert_eq!(p.name, "volga");
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.access, Some(Access::ContactAndOther));
        assert_eq!(
            p.entity.as_ref().unwrap().business_name.as_deref(),
            Some("Volga Booksellers")
        );
        let s1 = &p.statements[0];
        assert_eq!(s1.purposes, vec![PurposeUse::always(Purpose::Current)]);
        assert_eq!(s1.recipients.len(), 2);
        assert_eq!(s1.retention, vec![Retention::StatedPurpose]);
        assert_eq!(
            s1.data_groups[0].data[2].categories,
            vec![Category::Purchase]
        );

        let s2 = &p.statements[1];
        assert_eq!(s2.purposes[0].required, Required::OptIn);
        assert_eq!(s2.purposes[1].purpose, Purpose::Contact);
    }

    #[test]
    fn required_defaults_to_always() {
        let p = parse_policy_str(
            "<POLICY name=\"p\"><STATEMENT><PURPOSE><contact/></PURPOSE></STATEMENT></POLICY>",
        )
        .unwrap();
        assert_eq!(p.statements[0].purposes[0].required, Required::Always);
    }

    #[test]
    fn optional_attribute_parses() {
        let p = parse_policy_str(
            "<POLICY name=\"p\"><STATEMENT><DATA-GROUP><DATA ref=\"#user.bdate\" optional=\"yes\"/></DATA-GROUP></STATEMENT></POLICY>",
        )
        .unwrap();
        assert!(p.statements[0].data_groups[0].data[0].optional);
    }

    #[test]
    fn prefixed_elements_are_accepted() {
        let p = parse_policy_str(
            "<p3p:POLICY name=\"p\"><p3p:STATEMENT><p3p:PURPOSE><p3p:admin/></p3p:PURPOSE></p3p:STATEMENT></p3p:POLICY>",
        )
        .unwrap();
        assert_eq!(p.statements[0].purposes[0].purpose, Purpose::Admin);
    }

    #[test]
    fn policies_wrapper_parses_multiple() {
        let ps =
            parse_policies_str("<POLICIES><POLICY name=\"a\"/><POLICY name=\"b\"/></POLICIES>")
                .unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].name, "b");
    }

    #[test]
    fn unknown_purpose_is_rejected() {
        let err = parse_policy_str(
            "<POLICY name=\"p\"><STATEMENT><PURPOSE><zap/></PURPOSE></STATEMENT></POLICY>",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PolicyError::UnknownToken {
                vocabulary: "PURPOSE",
                ..
            }
        ));
    }

    #[test]
    fn unexpected_statement_child_is_rejected() {
        let err = parse_policy_str("<POLICY name=\"p\"><STATEMENT><WEIRD/></STATEMENT></POLICY>")
            .unwrap_err();
        assert!(err.to_string().contains("WEIRD"));
    }

    #[test]
    fn data_without_ref_is_rejected() {
        assert!(parse_policy_str(
            "<POLICY name=\"p\"><STATEMENT><DATA-GROUP><DATA/></DATA-GROUP></STATEMENT></POLICY>",
        )
        .is_err());
    }

    #[test]
    fn non_policy_root_is_rejected() {
        assert!(parse_policy_str("<RULESET/>").is_err());
    }

    #[test]
    fn disputes_parse() {
        let p = parse_policy_str(
            r#"<POLICY name="p">
                 <DISPUTES-GROUP>
                   <DISPUTES resolution-type="independent" service="http://trust.example.org">
                     <REMEDIES><correct/><money/></REMEDIES>
                   </DISPUTES>
                 </DISPUTES-GROUP>
               </POLICY>"#,
        )
        .unwrap();
        assert_eq!(p.disputes.len(), 1);
        assert_eq!(p.disputes[0].resolution_type, ResolutionType::Independent);
        assert_eq!(p.disputes[0].remedies, vec![Remedy::Correct, Remedy::Money]);
    }

    #[test]
    fn model_roundtrips_through_xml() {
        let original = volga_policy();
        let xml = original.to_xml();
        let reparsed = parse_policy_str(&xml).unwrap();
        assert_eq!(original, reparsed);
    }
}
