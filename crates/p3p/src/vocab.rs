//! The closed P3P 1.0 vocabularies.
//!
//! P3P fixes the legal values for PURPOSE (12), RECIPIENT (6),
//! RETENTION (5), data CATEGORIES (17), the `required` attribute on
//! purposes/recipients, and the ACCESS element. Each vocabulary is a
//! fieldless enum with loss-free string conversions; the string forms are
//! exactly the XML element names of the specification.

use crate::error::PolicyError;
use std::fmt;

/// Generates a P3P vocabulary enum with string conversions.
macro_rules! vocabulary {
    (
        $(#[$doc:meta])*
        $name:ident ($label:literal) {
            $( $(#[$vdoc:meta])* $variant:ident => $token:literal ),+ $(,)?
        }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum $name {
            $( $(#[$vdoc])* $variant, )+
        }

        impl $name {
            /// Every member of the vocabulary, in specification order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )+ ];

            /// The XML token for this value (the element name in P3P).
            pub const fn as_str(self) -> &'static str {
                match self {
                    $( $name::$variant => $token, )+
                }
            }

            /// Parse an XML token; `Err` carries the vocabulary name.
            pub fn from_token(token: &str) -> Result<Self, PolicyError> {
                match token {
                    $( $token => Ok($name::$variant), )+
                    _ => Err(PolicyError::UnknownToken {
                        vocabulary: $label,
                        token: token.to_string(),
                    }),
                }
            }

            /// Number of members in the vocabulary.
            pub const fn cardinality() -> usize {
                $name::ALL.len()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl std::str::FromStr for $name {
            type Err = PolicyError;
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                $name::from_token(s)
            }
        }
    };
}

vocabulary! {
    /// Purposes for which collected data may be used (P3P §3.3.4).
    ///
    /// A STATEMENT lists one or more purposes; all purposes in a
    /// statement share the statement's recipients, retention, and data.
    Purpose ("PURPOSE") {
        /// Completion and support of the activity for which the data was
        /// provided (the only purpose privacy-conscious users routinely
        /// accept — see Jane's preference, paper Fig. 2).
        Current => "current",
        /// Technical administration of the web site.
        Admin => "admin",
        /// Research and development.
        Develop => "develop",
        /// One-time tailoring of the current visit.
        Tailoring => "tailoring",
        /// Pseudonymous analysis of habits and interests.
        PseudoAnalysis => "pseudo-analysis",
        /// Pseudonymous decision-making.
        PseudoDecision => "pseudo-decision",
        /// Identified analysis of habits and interests.
        IndividualAnalysis => "individual-analysis",
        /// Identified decision-making — e.g. personalized book
        /// recommendations in the paper's Volga example.
        IndividualDecision => "individual-decision",
        /// Contacting visitors for marketing through channels other than
        /// voice telephone.
        Contact => "contact",
        /// Historical preservation under law or policy.
        Historical => "historical",
        /// Contacting visitors for marketing via voice telephone.
        Telemarketing => "telemarketing",
        /// Uses not captured by the above (must be explained in
        /// human-readable text).
        OtherPurpose => "other-purpose",
    }
}

vocabulary! {
    /// Recipients of collected data (P3P §3.3.5).
    Recipient ("RECIPIENT") {
        /// Ourselves and/or entities acting as our agents.
        Ours => "ours",
        /// Delivery services possibly following different practices.
        Delivery => "delivery",
        /// Legal entities following our practices.
        Same => "same",
        /// Legal entities following different, disclosed practices.
        OtherRecipient => "other-recipient",
        /// Unrelated third parties whose practices are unknown to us.
        Unrelated => "unrelated",
        /// Public fora.
        Public => "public",
    }
}

vocabulary! {
    /// How long collected data is retained (P3P §3.3.6).
    Retention ("RETENTION") {
        /// Not retained beyond the current online interaction.
        NoRetention => "no-retention",
        /// Discarded at the earliest time possible after the stated
        /// purpose is met.
        StatedPurpose => "stated-purpose",
        /// Retained to meet a stated legal requirement.
        LegalRequirement => "legal-requirement",
        /// Long-term retention under a business practice with a
        /// destruction timetable.
        BusinessPractices => "business-practices",
        /// Retained indefinitely.
        Indefinitely => "indefinitely",
    }
}

vocabulary! {
    /// Data categories (P3P §3.4): quality-of-kind labels attached to
    /// data elements, either explicitly in a policy or implicitly via
    /// the base data schema.
    Category ("CATEGORIES") {
        /// Physical contact information (postal address, phone).
        Physical => "physical",
        /// Online contact information (email, URI).
        Online => "online",
        /// Unique identifiers issued by the site or user agents.
        UniqueId => "uniqueid",
        /// Purchase information, incl. payment instruments — the paper's
        /// Volga policy attaches this to `dynamic.miscdata`.
        Purchase => "purchase",
        /// Financial information (accounts, balances).
        Financial => "financial",
        /// Computer information (IP address, OS, browser).
        Computer => "computer",
        /// Navigation and clickstream data.
        Navigation => "navigation",
        /// Data actively generated by interacting with the site.
        Interactive => "interactive",
        /// Demographic and socio-economic data.
        Demographic => "demographic",
        /// The content of communications (mail bodies, chat).
        Content => "content",
        /// Mechanisms for maintaining a stateful session (cookies).
        State => "state",
        /// Membership in political/religious/trade groups.
        Political => "political",
        /// Health information.
        Health => "health",
        /// Individual tastes and preferences.
        Preference => "preference",
        /// Current physical location beyond what `physical` covers.
        Location => "location",
        /// Government-issued identifiers (SSN, …).
        Government => "government",
        /// Anything else (must be explained in human-readable text).
        OtherCategory => "other-category",
    }
}

vocabulary! {
    /// The `required` attribute on PURPOSE/RECIPIENT subelements
    /// (P3P §3.3.4): whether the practice is unconditional or subject to
    /// user opt-in/opt-out. The paper's Volga/Jane walk-through (§2)
    /// hinges on `opt-in` versus the `always` default.
    Required ("required") {
        /// Data may always be used this way (the default).
        Always => "always",
        /// The practice applies only with explicit user consent.
        OptIn => "opt-in",
        /// The practice applies unless the user takes action to decline.
        OptOut => "opt-out",
    }
}

vocabulary! {
    /// The ACCESS element (P3P §3.2.4): what collected data the
    /// individual can see.
    Access ("ACCESS") {
        /// No identified data is collected.
        NonIdent => "nonident",
        /// Access to all identified data.
        All => "all",
        /// Access to identified contact information and other data.
        ContactAndOther => "contact-and-other",
        /// Access to identified contact information only.
        IdentContact => "ident-contact",
        /// Access to other identified data only.
        OtherIdent => "other-ident",
        /// No access.
        NoAccess => "none",
    }
}

vocabulary! {
    /// Remedies offered in DISPUTES (P3P §3.2.5).
    Remedy ("REMEDIES") {
        /// Errors will be corrected.
        Correct => "correct",
        /// Money-back or other compensation.
        Money => "money",
        /// Remedies provided under law.
        Law => "law",
    }
}

/// Dispute resolution types (the `resolution-type` attribute of
/// DISPUTES).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolutionType {
    /// Customer service at the site.
    Service,
    /// An independent organization.
    Independent,
    /// A court of law.
    Court,
    /// An applicable law.
    ApplicableLaw,
}

impl ResolutionType {
    pub const ALL: &'static [ResolutionType] = &[
        ResolutionType::Service,
        ResolutionType::Independent,
        ResolutionType::Court,
        ResolutionType::ApplicableLaw,
    ];

    pub const fn as_str(self) -> &'static str {
        match self {
            ResolutionType::Service => "service",
            ResolutionType::Independent => "independent",
            ResolutionType::Court => "court",
            ResolutionType::ApplicableLaw => "law",
        }
    }

    pub fn from_token(token: &str) -> Result<Self, PolicyError> {
        Self::ALL
            .iter()
            .copied()
            .find(|r| r.as_str() == token)
            .ok_or_else(|| PolicyError::UnknownToken {
                vocabulary: "resolution-type",
                token: token.to_string(),
            })
    }
}

impl fmt::Display for ResolutionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_the_paper() {
        // "P3P has predefined values for PURPOSE (12 choices),
        //  RECIPIENT (6), and RETENTION (5)." — paper §2.1.
        assert_eq!(Purpose::cardinality(), 12);
        assert_eq!(Recipient::cardinality(), 6);
        assert_eq!(Retention::cardinality(), 5);
        assert_eq!(Category::cardinality(), 17);
        assert_eq!(Required::cardinality(), 3);
        assert_eq!(Access::cardinality(), 6);
    }

    #[test]
    fn tokens_roundtrip_for_every_vocabulary_member() {
        for p in Purpose::ALL {
            assert_eq!(Purpose::from_token(p.as_str()).unwrap(), *p);
        }
        for r in Recipient::ALL {
            assert_eq!(Recipient::from_token(r.as_str()).unwrap(), *r);
        }
        for r in Retention::ALL {
            assert_eq!(Retention::from_token(r.as_str()).unwrap(), *r);
        }
        for c in Category::ALL {
            assert_eq!(Category::from_token(c.as_str()).unwrap(), *c);
        }
        for r in Required::ALL {
            assert_eq!(Required::from_token(r.as_str()).unwrap(), *r);
        }
        for a in Access::ALL {
            assert_eq!(Access::from_token(a.as_str()).unwrap(), *a);
        }
        for r in Remedy::ALL {
            assert_eq!(Remedy::from_token(r.as_str()).unwrap(), *r);
        }
        for r in ResolutionType::ALL {
            assert_eq!(ResolutionType::from_token(r.as_str()).unwrap(), *r);
        }
    }

    #[test]
    fn paper_examples_parse() {
        // Tokens used in the paper's figures.
        assert_eq!(Purpose::from_token("current").unwrap(), Purpose::Current);
        assert_eq!(
            Purpose::from_token("individual-decision").unwrap(),
            Purpose::IndividualDecision
        );
        assert_eq!(Recipient::from_token("ours").unwrap(), Recipient::Ours);
        assert_eq!(Recipient::from_token("same").unwrap(), Recipient::Same);
        assert_eq!(
            Retention::from_token("stated-purpose").unwrap(),
            Retention::StatedPurpose
        );
        assert_eq!(
            Retention::from_token("business-practices").unwrap(),
            Retention::BusinessPractices
        );
        assert_eq!(
            Category::from_token("purchase").unwrap(),
            Category::Purchase
        );
        assert_eq!(Required::from_token("opt-in").unwrap(), Required::OptIn);
    }

    #[test]
    fn unknown_tokens_are_reported_with_vocabulary() {
        let err = Purpose::from_token("frobnicate").unwrap_err();
        match err {
            PolicyError::UnknownToken { vocabulary, token } => {
                assert_eq!(vocabulary, "PURPOSE");
                assert_eq!(token, "frobnicate");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn from_str_trait_works() {
        let p: Purpose = "contact".parse().unwrap();
        assert_eq!(p, Purpose::Contact);
        assert!("".parse::<Purpose>().is_err());
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(Purpose::PseudoAnalysis.to_string(), "pseudo-analysis");
        assert_eq!(Access::NoAccess.to_string(), "none");
        assert_eq!(ResolutionType::ApplicableLaw.to_string(), "law");
    }

    #[test]
    fn vocabulary_tokens_are_distinct() {
        let mut tokens: Vec<&str> = Purpose::ALL.iter().map(|p| p.as_str()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), Purpose::cardinality());
    }
}
