//! Compact policies (paper §3.2).
//!
//! IE6's cookie filtering works on *compact policies*: a short sequence
//! of three-to-five-letter tokens sent in the `P3P` HTTP response
//! header, summarizing the full policy. This module derives a compact
//! policy from a full [`Policy`], parses header strings, and implements
//! an IE6-style evaluation against a coarse preference level, so the
//! suite covers the second prominent client-centric implementation the
//! paper surveys.

use crate::model::Policy;
use crate::vocab::{Access, Category, Purpose, Recipient, Required, Retention};

/// One compact-policy token.
///
/// The token set follows P3P 1.0 §4: access tokens, purpose tokens
/// (suffixed `a`/`o` for opt-in/opt-out), recipient tokens, retention
/// tokens, and category tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompactToken(pub String);

impl CompactToken {
    /// The textual token, e.g. `CUR` or `CONo`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A compact policy: an ordered token list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactPolicy {
    pub tokens: Vec<CompactToken>,
}

fn purpose_token(p: Purpose) -> &'static str {
    match p {
        Purpose::Current => "CUR",
        Purpose::Admin => "ADM",
        Purpose::Develop => "DEV",
        Purpose::Tailoring => "TAI",
        Purpose::PseudoAnalysis => "PSA",
        Purpose::PseudoDecision => "PSD",
        Purpose::IndividualAnalysis => "IVA",
        Purpose::IndividualDecision => "IVD",
        Purpose::Contact => "CON",
        Purpose::Historical => "HIS",
        Purpose::Telemarketing => "TEL",
        Purpose::OtherPurpose => "OTP",
    }
}

fn recipient_token(r: Recipient) -> &'static str {
    match r {
        Recipient::Ours => "OUR",
        Recipient::Delivery => "DEL",
        Recipient::Same => "SAM",
        Recipient::OtherRecipient => "OTR",
        Recipient::Unrelated => "UNR",
        Recipient::Public => "PUB",
    }
}

fn retention_token(r: Retention) -> &'static str {
    match r {
        Retention::NoRetention => "NOR",
        Retention::StatedPurpose => "STP",
        Retention::LegalRequirement => "LEG",
        Retention::BusinessPractices => "BUS",
        Retention::Indefinitely => "IND",
    }
}

fn access_token(a: Access) -> &'static str {
    match a {
        Access::NonIdent => "NOI",
        Access::All => "ALL",
        Access::ContactAndOther => "CAO",
        Access::IdentContact => "IDC",
        Access::OtherIdent => "OTI",
        Access::NoAccess => "NON",
    }
}

fn category_token(c: Category) -> &'static str {
    match c {
        Category::Physical => "PHY",
        Category::Online => "ONL",
        Category::UniqueId => "UNI",
        Category::Purchase => "PUR",
        Category::Financial => "FIN",
        Category::Computer => "COM",
        Category::Navigation => "NAV",
        Category::Interactive => "INT",
        Category::Demographic => "DEM",
        Category::Content => "CNT",
        Category::State => "STA",
        Category::Political => "POL",
        Category::Health => "HEA",
        Category::Preference => "PRE",
        Category::Location => "LOC",
        Category::Government => "GOV",
        Category::OtherCategory => "OTC",
    }
}

fn required_suffix(r: Required) -> &'static str {
    match r {
        Required::Always => "",
        Required::OptIn => "a", // "attribute" consent required
        Required::OptOut => "o",
    }
}

impl CompactPolicy {
    /// Derive the compact form of a full policy: access token, then the
    /// deduplicated purpose/recipient/retention/category tokens in
    /// vocabulary order.
    pub fn from_policy(policy: &Policy) -> CompactPolicy {
        let mut tokens: Vec<CompactToken> = Vec::new();
        let mut push = |t: String| {
            if !tokens.iter().any(|x| x.0 == t) {
                tokens.push(CompactToken(t));
            }
        };
        if let Some(a) = policy.access {
            push(access_token(a).to_string());
        }
        for s in &policy.statements {
            for pu in &s.purposes {
                push(format!(
                    "{}{}",
                    purpose_token(pu.purpose),
                    required_suffix(pu.required)
                ));
            }
            for ru in &s.recipients {
                push(format!(
                    "{}{}",
                    recipient_token(ru.recipient),
                    required_suffix(ru.required)
                ));
            }
            for r in &s.retention {
                push(retention_token(*r).to_string());
            }
            for g in &s.data_groups {
                for d in &g.data {
                    for c in d.effective_categories() {
                        push(category_token(c).to_string());
                    }
                }
            }
        }
        CompactPolicy { tokens }
    }

    /// Parse a `P3P: CP="..."` header value (with or without the
    /// `CP=`/quotes wrapper) into tokens.
    pub fn parse_header(header: &str) -> CompactPolicy {
        let inner = header
            .trim()
            .trim_start_matches("CP=")
            .trim_matches('"')
            .trim();
        CompactPolicy {
            tokens: inner
                .split_whitespace()
                .map(|t| CompactToken(t.to_string()))
                .collect(),
        }
    }

    /// Render as the value of a `P3P` response header.
    pub fn to_header(&self) -> String {
        let body: Vec<&str> = self.tokens.iter().map(|t| t.as_str()).collect();
        format!("CP=\"{}\"", body.join(" "))
    }

    /// True when any token (ignoring consent suffixes) is in `set`.
    fn has_any(&self, set: &[&str]) -> bool {
        self.tokens.iter().any(|t| {
            let base = t.0.trim_end_matches(['a', 'o']);
            set.contains(&base)
        })
    }

    /// True when the token appears *without* an opt-in/opt-out suffix.
    fn has_unconditional(&self, token: &str) -> bool {
        self.tokens.iter().any(|t| t.0 == token)
    }
}

/// IE6's privacy slider positions (§3.2: the user picks a preference
/// level; cookies whose compact policy is incompatible are blocked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CookiePreference {
    /// Accept all cookies.
    Low,
    /// Block third-party-style sharing without consent.
    Medium,
    /// Additionally block identified profiling without consent.
    High,
    /// Block everything touching personally identifiable information.
    BlockAll,
}

/// The IE6-style verdict on a cookie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CookieVerdict {
    Accept,
    Block,
}

/// Evaluate a compact policy against a preference level, approximating
/// IE6's default rules.
pub fn evaluate_cookie(policy: &CompactPolicy, pref: CookiePreference) -> CookieVerdict {
    match pref {
        CookiePreference::Low => CookieVerdict::Accept,
        CookiePreference::Medium => {
            // Block when data is shared with unrelated parties or made
            // public without consent.
            if policy.has_unconditional("UNR") || policy.has_unconditional("PUB") {
                CookieVerdict::Block
            } else {
                CookieVerdict::Accept
            }
        }
        CookiePreference::High => {
            if policy.has_unconditional("UNR")
                || policy.has_unconditional("PUB")
                || policy.has_unconditional("IVA")
                || policy.has_unconditional("IVD")
                || policy.has_unconditional("CON")
                || policy.has_unconditional("TEL")
            {
                CookieVerdict::Block
            } else {
                CookieVerdict::Accept
            }
        }
        CookiePreference::BlockAll => {
            // Any personally identifiable category blocks.
            if policy.has_any(&["PHY", "ONL", "UNI", "GOV", "FIN", "PUR", "LOC"]) {
                CookieVerdict::Block
            } else {
                CookieVerdict::Accept
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::volga_policy;

    #[test]
    fn volga_compact_tokens() {
        let cp = CompactPolicy::from_policy(&volga_policy());
        let tokens: Vec<&str> = cp.tokens.iter().map(|t| t.as_str()).collect();
        assert!(tokens.contains(&"CAO"), "{tokens:?}");
        assert!(tokens.contains(&"CUR"));
        assert!(
            tokens.contains(&"IVDa"),
            "opt-in suffix expected: {tokens:?}"
        );
        assert!(tokens.contains(&"CONa"));
        assert!(tokens.contains(&"OUR"));
        assert!(tokens.contains(&"SAM"));
        assert!(tokens.contains(&"STP"));
        assert!(tokens.contains(&"BUS"));
        assert!(tokens.contains(&"PUR"));
        // base-schema augmentation reaches the compact form too
        assert!(tokens.contains(&"PHY"));
        assert!(tokens.contains(&"ONL"));
    }

    #[test]
    fn header_roundtrip() {
        let cp = CompactPolicy::from_policy(&volga_policy());
        let header = cp.to_header();
        assert!(header.starts_with("CP=\""));
        let reparsed = CompactPolicy::parse_header(&header);
        assert_eq!(cp, reparsed);
    }

    #[test]
    fn parse_header_tolerates_bare_tokens() {
        let cp = CompactPolicy::parse_header("CAO DSP COR");
        assert_eq!(cp.tokens.len(), 3);
        assert_eq!(cp.tokens[0].as_str(), "CAO");
    }

    #[test]
    fn low_accepts_everything() {
        let cp = CompactPolicy::parse_header("UNR PUB IVD TEL PHY");
        assert_eq!(
            evaluate_cookie(&cp, CookiePreference::Low),
            CookieVerdict::Accept
        );
    }

    #[test]
    fn medium_blocks_unrelated_sharing() {
        let unrelated = CompactPolicy::parse_header("CUR UNR");
        assert_eq!(
            evaluate_cookie(&unrelated, CookiePreference::Medium),
            CookieVerdict::Block
        );
        // ...but not when the sharing is opt-in.
        let opt_in = CompactPolicy::parse_header("CUR UNRa");
        assert_eq!(
            evaluate_cookie(&opt_in, CookiePreference::Medium),
            CookieVerdict::Accept
        );
    }

    #[test]
    fn high_blocks_unconsented_profiling() {
        let profiling = CompactPolicy::parse_header("CUR IVD OUR");
        assert_eq!(
            evaluate_cookie(&profiling, CookiePreference::High),
            CookieVerdict::Block
        );
        let volga = CompactPolicy::from_policy(&volga_policy());
        // Volga's profiling is opt-in, so High accepts it.
        assert_eq!(
            evaluate_cookie(&volga, CookiePreference::High),
            CookieVerdict::Accept
        );
    }

    #[test]
    fn block_all_blocks_identifiable_categories() {
        let volga = CompactPolicy::from_policy(&volga_policy());
        assert_eq!(
            evaluate_cookie(&volga, CookiePreference::BlockAll),
            CookieVerdict::Block
        );
        let anonymous = CompactPolicy::parse_header("CUR NOI NAV COM");
        assert_eq!(
            evaluate_cookie(&anonymous, CookiePreference::BlockAll),
            CookieVerdict::Accept
        );
    }

    #[test]
    fn tokens_are_deduplicated() {
        let cp = CompactPolicy::from_policy(&volga_policy());
        let mut sorted: Vec<&str> = cp.tokens.iter().map(|t| t.as_str()).collect();
        let before = sorted.len();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), before);
    }
}
