//! P3P reference files (paper §2.3, §5.5).
//!
//! A site may publish several policies, each covering part of the site.
//! The reference file (a `<META>` document) holds `<POLICY-REF>`
//! entries whose INCLUDE/EXCLUDE patterns map request URIs to policies,
//! with separate COOKIE-INCLUDE/COOKIE-EXCLUDE patterns for cookies.

use crate::error::PolicyError;
use p3p_xmldom::{parse_element, Element, ElementBuilder};

/// A parsed reference file (the `<META>`/`<POLICY-REFERENCES>` content).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReferenceFile {
    /// Policy references in document order. Order matters: the first
    /// match wins.
    pub policy_refs: Vec<PolicyRef>,
    /// Lifetime of the reference file in seconds (`EXPIRY max-age`).
    pub max_age: Option<u64>,
}

/// One `<POLICY-REF>`: a policy URI plus the URI patterns it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRef {
    /// The `about` attribute: URI (or fragment) of the policy. A
    /// fragment like `/p3p/policies.xml#checkout` names the policy
    /// `checkout`.
    pub about: String,
    /// Local path patterns covered (`<INCLUDE>`), with `*` wildcards.
    pub includes: Vec<String>,
    /// Local path patterns excluded (`<EXCLUDE>`).
    pub excludes: Vec<String>,
    /// Cookie patterns covered (`<COOKIE-INCLUDE>`), `name=value` form
    /// with wildcards.
    pub cookie_includes: Vec<String>,
    /// Cookie patterns excluded (`<COOKIE-EXCLUDE>`).
    pub cookie_excludes: Vec<String>,
}

impl PolicyRef {
    /// A reference covering nothing; add patterns via the fields.
    pub fn new(about: impl Into<String>) -> Self {
        PolicyRef {
            about: about.into(),
            includes: Vec::new(),
            excludes: Vec::new(),
            cookie_includes: Vec::new(),
            cookie_excludes: Vec::new(),
        }
    }

    /// The policy's local name: the URI fragment if present, otherwise
    /// the whole `about` value.
    pub fn policy_name(&self) -> &str {
        match self.about.rsplit_once('#') {
            Some((_, frag)) => frag,
            None => &self.about,
        }
    }

    /// Does this reference cover `path`? Covered when some INCLUDE
    /// matches and no EXCLUDE matches (P3P §2.3.2.1.3).
    pub fn covers(&self, path: &str) -> bool {
        self.includes.iter().any(|p| wildcard_match(p, path))
            && !self.excludes.iter().any(|p| wildcard_match(p, path))
    }

    /// Does this reference cover the cookie `name=value`?
    pub fn covers_cookie(&self, cookie: &str) -> bool {
        self.cookie_includes
            .iter()
            .any(|p| wildcard_match(p, cookie))
            && !self
                .cookie_excludes
                .iter()
                .any(|p| wildcard_match(p, cookie))
    }
}

impl ReferenceFile {
    /// Parse a `<META>` document from text.
    pub fn parse(xml: &str) -> Result<ReferenceFile, PolicyError> {
        let root = parse_element(xml)?;
        Self::from_element(&root)
    }

    /// Parse from a `<META>` (or bare `<POLICY-REFERENCES>`) element.
    pub fn from_element(root: &Element) -> Result<ReferenceFile, PolicyError> {
        let refs_parent = match root.name.local.as_str() {
            "META" => root
                .find_child("POLICY-REFERENCES")
                .ok_or_else(|| PolicyError::invalid("META", "missing POLICY-REFERENCES element"))?,
            "POLICY-REFERENCES" => root,
            other => {
                return Err(PolicyError::invalid(
                    other,
                    "expected META or POLICY-REFERENCES",
                ))
            }
        };
        let mut file = ReferenceFile::default();
        if let Some(expiry) = refs_parent.find_child("EXPIRY") {
            if let Some(max_age) = expiry.attr_local("max-age") {
                file.max_age = max_age.parse().ok();
            }
        }
        for r in refs_parent.find_children("POLICY-REF") {
            let about = r
                .attr_local("about")
                .ok_or_else(|| PolicyError::invalid("POLICY-REF", "missing about attribute"))?;
            let mut policy_ref = PolicyRef::new(about);
            for child in r.child_elements() {
                let text = child.text();
                match child.name.local.as_str() {
                    "INCLUDE" => policy_ref.includes.push(text),
                    "EXCLUDE" => policy_ref.excludes.push(text),
                    "COOKIE-INCLUDE" => policy_ref.cookie_includes.push(text),
                    "COOKIE-EXCLUDE" => policy_ref.cookie_excludes.push(text),
                    "METHOD" => {} // HTTP method scoping, accepted and ignored
                    other => {
                        return Err(PolicyError::invalid(
                            "POLICY-REF",
                            format!("unexpected child element <{other}>"),
                        ))
                    }
                }
            }
            file.policy_refs.push(policy_ref);
        }
        Ok(file)
    }

    /// Serialize to a `<META>` element.
    pub fn to_element(&self) -> Element {
        let mut refs = ElementBuilder::new("POLICY-REFERENCES");
        if let Some(age) = self.max_age {
            refs = refs.child(ElementBuilder::new("EXPIRY").attr("max-age", age.to_string()));
        }
        for r in &self.policy_refs {
            let mut b = ElementBuilder::new("POLICY-REF").attr("about", r.about.clone());
            for p in &r.includes {
                b = b.child(ElementBuilder::new("INCLUDE").text(p.clone()));
            }
            for p in &r.excludes {
                b = b.child(ElementBuilder::new("EXCLUDE").text(p.clone()));
            }
            for p in &r.cookie_includes {
                b = b.child(ElementBuilder::new("COOKIE-INCLUDE").text(p.clone()));
            }
            for p in &r.cookie_excludes {
                b = b.child(ElementBuilder::new("COOKIE-EXCLUDE").text(p.clone()));
            }
            refs = refs.child(b);
        }
        ElementBuilder::new("META").child(refs).build()
    }

    /// Serialize to XML text.
    pub fn to_xml(&self) -> String {
        self.to_element().to_pretty_xml()
    }

    /// Find the policy applicable to a request path: the first
    /// `POLICY-REF` (in document order) that covers it.
    pub fn lookup(&self, path: &str) -> Option<&PolicyRef> {
        self.policy_refs.iter().find(|r| r.covers(path))
    }

    /// Find the policy applicable to a cookie.
    pub fn lookup_cookie(&self, cookie: &str) -> Option<&PolicyRef> {
        self.policy_refs.iter().find(|r| r.covers_cookie(cookie))
    }
}

/// Match `pattern` (with `*` wildcards) against `text`.
///
/// P3P local-URI patterns: `*` matches any run of characters (including
/// none); all other characters match literally. Iterative two-pointer
/// algorithm with backtracking — linear in practice, no recursion.
pub fn wildcard_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF_XML: &str = r#"
<META>
  <POLICY-REFERENCES>
    <EXPIRY max-age="86400"/>
    <POLICY-REF about="/p3p/policies.xml#checkout">
      <INCLUDE>/checkout/*</INCLUDE>
      <INCLUDE>/cart/*</INCLUDE>
      <EXCLUDE>/checkout/help*</EXCLUDE>
      <COOKIE-INCLUDE>session=*</COOKIE-INCLUDE>
    </POLICY-REF>
    <POLICY-REF about="/p3p/policies.xml#general">
      <INCLUDE>/*</INCLUDE>
    </POLICY-REF>
  </POLICY-REFERENCES>
</META>"#;

    #[test]
    fn parses_reference_file() {
        let f = ReferenceFile::parse(REF_XML).unwrap();
        assert_eq!(f.max_age, Some(86400));
        assert_eq!(f.policy_refs.len(), 2);
        assert_eq!(f.policy_refs[0].policy_name(), "checkout");
        assert_eq!(f.policy_refs[0].includes.len(), 2);
        assert_eq!(f.policy_refs[0].excludes.len(), 1);
    }

    #[test]
    fn lookup_respects_document_order_and_excludes() {
        let f = ReferenceFile::parse(REF_XML).unwrap();
        assert_eq!(f.lookup("/checkout/pay").unwrap().policy_name(), "checkout");
        assert_eq!(f.lookup("/cart/view").unwrap().policy_name(), "checkout");
        // excluded from checkout, falls through to general
        assert_eq!(
            f.lookup("/checkout/help/faq").unwrap().policy_name(),
            "general"
        );
        assert_eq!(f.lookup("/index.html").unwrap().policy_name(), "general");
    }

    #[test]
    fn lookup_returns_none_when_nothing_covers() {
        let mut f = ReferenceFile::default();
        f.policy_refs.push({
            let mut r = PolicyRef::new("#only");
            r.includes.push("/only/*".to_string());
            r
        });
        assert!(f.lookup("/other").is_none());
    }

    #[test]
    fn cookie_lookup() {
        let f = ReferenceFile::parse(REF_XML).unwrap();
        assert_eq!(
            f.lookup_cookie("session=abc123").unwrap().policy_name(),
            "checkout"
        );
        assert!(f.lookup_cookie("tracker=xyz").is_none());
    }

    #[test]
    fn roundtrip_through_xml() {
        let f = ReferenceFile::parse(REF_XML).unwrap();
        let again = ReferenceFile::parse(&f.to_xml()).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn policy_name_without_fragment_is_whole_about() {
        assert_eq!(PolicyRef::new("general").policy_name(), "general");
    }

    #[test]
    fn rejects_missing_about() {
        let bad = "<META><POLICY-REFERENCES><POLICY-REF><INCLUDE>/*</INCLUDE></POLICY-REF></POLICY-REFERENCES></META>";
        assert!(ReferenceFile::parse(bad).is_err());
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(ReferenceFile::parse("<POLICY/>").is_err());
    }

    // --- wildcard matcher ---

    #[test]
    fn wildcard_literal() {
        assert!(wildcard_match("/index.html", "/index.html"));
        assert!(!wildcard_match("/index.html", "/index.htm"));
        assert!(!wildcard_match("/index.htm", "/index.html"));
    }

    #[test]
    fn wildcard_star_positions() {
        assert!(wildcard_match("/*", "/anything/at/all"));
        assert!(wildcard_match("*", ""));
        assert!(wildcard_match("/a/*/c", "/a/b/c"));
        assert!(wildcard_match("/a/*/c", "/a/bb/x/c"));
        assert!(!wildcard_match("/a/*/c", "/a/b/d"));
        assert!(wildcard_match("*.html", "/deep/path/page.html"));
        assert!(wildcard_match("/cgi*", "/cgi-bin/run"));
    }

    #[test]
    fn wildcard_multiple_stars() {
        assert!(wildcard_match("/a*b*c", "/aXXbYYc"));
        assert!(wildcard_match("/a*b*c", "/abc"));
        assert!(!wildcard_match("/a*b*c", "/acb"));
    }

    #[test]
    fn wildcard_empty_pattern_matches_only_empty() {
        assert!(wildcard_match("", ""));
        assert!(!wildcard_match("", "x"));
    }

    #[test]
    fn wildcard_trailing_star_matches_empty_suffix() {
        assert!(wildcard_match("/checkout/*", "/checkout/"));
        assert!(!wildcard_match("/checkout/*", "/checkout"));
    }
}
