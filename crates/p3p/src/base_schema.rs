//! The P3P 1.0 *base data schema*.
//!
//! P3P predefines a hierarchy of data elements (`user.name.given`,
//! `dynamic.miscdata`, …) and fixes the data categories of most of them
//! (P3P §5.5–5.7 and Appendix 3). A policy that references
//! `#user.home-info.postal` implicitly collects every leaf beneath that
//! node, and those leaves carry the schema's categories whether or not
//! the policy repeats them.
//!
//! The APPEL matching algorithm therefore *augments* every `DATA`
//! element of a policy with the categories the base schema assigns
//! before matching (APPEL §5.4.6). The paper's profiling (§6.3.2) found
//! this augmentation accounts for most of the native engine's cost — the
//! server-centric design instead performs it once, at shred time. Both
//! code paths in this suite call into this module, so the comparison
//! exercises identical semantics.

use crate::vocab::Category;

use Category::*;

/// One leaf of the base data schema: dotted path plus fixed categories.
///
/// Variable-category elements (`dynamic.miscdata`, `dynamic.cookies`)
/// appear with an empty category list; their categories must be declared
/// explicitly by each policy.
pub const BASE_SCHEMA: &[(&str, &[Category])] = &[
    // --- dynamic data (generated in the course of the interaction) ---
    ("dynamic.clickstream", &[Navigation, Computer]),
    ("dynamic.http.referer", &[Navigation]),
    ("dynamic.http.useragent", &[Computer]),
    ("dynamic.clientevents", &[Navigation, Interactive]),
    ("dynamic.searchtext", &[Interactive]),
    ("dynamic.interactionrecord", &[Interactive]),
    ("dynamic.cookies", &[]),
    ("dynamic.miscdata", &[]),
    // --- user: name ---
    ("user.name.prefix", &[Demographic, Physical]),
    ("user.name.given", &[Physical]),
    ("user.name.middle", &[Physical]),
    ("user.name.family", &[Physical]),
    ("user.name.suffix", &[Demographic, Physical]),
    ("user.name.nickname", &[Demographic, Physical]),
    // --- user: identity and demographics ---
    ("user.bdate", &[Demographic]),
    ("user.login.id", &[UniqueId]),
    ("user.login.password", &[UniqueId]),
    ("user.cert.key", &[UniqueId]),
    ("user.cert.format", &[UniqueId]),
    ("user.gender", &[Demographic]),
    ("user.employer", &[Demographic]),
    ("user.department", &[Demographic]),
    ("user.jobtitle", &[Demographic]),
    // --- user: home contact information ---
    ("user.home-info.postal.name", &[Physical, Demographic]),
    ("user.home-info.postal.street", &[Physical, Demographic]),
    ("user.home-info.postal.city", &[Physical, Demographic]),
    ("user.home-info.postal.stateprov", &[Physical, Demographic]),
    ("user.home-info.postal.postalcode", &[Physical, Demographic]),
    ("user.home-info.postal.country", &[Physical, Demographic]),
    (
        "user.home-info.postal.organization",
        &[Physical, Demographic],
    ),
    ("user.home-info.telecom.telephone", &[Physical]),
    ("user.home-info.telecom.fax", &[Physical]),
    ("user.home-info.telecom.mobile", &[Physical]),
    ("user.home-info.telecom.pager", &[Physical]),
    ("user.home-info.online.email", &[Online]),
    ("user.home-info.online.uri", &[Online]),
    // --- user: business contact information ---
    ("user.business-info.postal.name", &[Physical, Demographic]),
    ("user.business-info.postal.street", &[Physical, Demographic]),
    ("user.business-info.postal.city", &[Physical, Demographic]),
    (
        "user.business-info.postal.stateprov",
        &[Physical, Demographic],
    ),
    (
        "user.business-info.postal.postalcode",
        &[Physical, Demographic],
    ),
    (
        "user.business-info.postal.country",
        &[Physical, Demographic],
    ),
    (
        "user.business-info.postal.organization",
        &[Physical, Demographic],
    ),
    ("user.business-info.telecom.telephone", &[Physical]),
    ("user.business-info.telecom.fax", &[Physical]),
    ("user.business-info.telecom.mobile", &[Physical]),
    ("user.business-info.telecom.pager", &[Physical]),
    ("user.business-info.online.email", &[Online]),
    ("user.business-info.online.uri", &[Online]),
    // --- thirdparty: mirrors user ---
    ("thirdparty.name.prefix", &[Demographic, Physical]),
    ("thirdparty.name.given", &[Physical]),
    ("thirdparty.name.middle", &[Physical]),
    ("thirdparty.name.family", &[Physical]),
    ("thirdparty.name.suffix", &[Demographic, Physical]),
    ("thirdparty.name.nickname", &[Demographic, Physical]),
    ("thirdparty.bdate", &[Demographic]),
    ("thirdparty.login.id", &[UniqueId]),
    ("thirdparty.login.password", &[UniqueId]),
    ("thirdparty.cert.key", &[UniqueId]),
    ("thirdparty.cert.format", &[UniqueId]),
    ("thirdparty.gender", &[Demographic]),
    ("thirdparty.employer", &[Demographic]),
    ("thirdparty.department", &[Demographic]),
    ("thirdparty.jobtitle", &[Demographic]),
    ("thirdparty.home-info.postal.name", &[Physical, Demographic]),
    (
        "thirdparty.home-info.postal.street",
        &[Physical, Demographic],
    ),
    ("thirdparty.home-info.postal.city", &[Physical, Demographic]),
    (
        "thirdparty.home-info.postal.stateprov",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.home-info.postal.postalcode",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.home-info.postal.country",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.home-info.postal.organization",
        &[Physical, Demographic],
    ),
    ("thirdparty.home-info.telecom.telephone", &[Physical]),
    ("thirdparty.home-info.telecom.fax", &[Physical]),
    ("thirdparty.home-info.telecom.mobile", &[Physical]),
    ("thirdparty.home-info.telecom.pager", &[Physical]),
    ("thirdparty.home-info.online.email", &[Online]),
    ("thirdparty.home-info.online.uri", &[Online]),
    (
        "thirdparty.business-info.postal.name",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.business-info.postal.street",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.business-info.postal.city",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.business-info.postal.stateprov",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.business-info.postal.postalcode",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.business-info.postal.country",
        &[Physical, Demographic],
    ),
    (
        "thirdparty.business-info.postal.organization",
        &[Physical, Demographic],
    ),
    ("thirdparty.business-info.telecom.telephone", &[Physical]),
    ("thirdparty.business-info.telecom.fax", &[Physical]),
    ("thirdparty.business-info.telecom.mobile", &[Physical]),
    ("thirdparty.business-info.telecom.pager", &[Physical]),
    ("thirdparty.business-info.online.email", &[Online]),
    ("thirdparty.business-info.online.uri", &[Online]),
    // --- business (entity description data) ---
    ("business.name", &[Demographic]),
    ("business.department", &[Demographic]),
    (
        "business.contact-info.postal.street",
        &[Physical, Demographic],
    ),
    (
        "business.contact-info.postal.city",
        &[Physical, Demographic],
    ),
    (
        "business.contact-info.postal.stateprov",
        &[Physical, Demographic],
    ),
    (
        "business.contact-info.postal.postalcode",
        &[Physical, Demographic],
    ),
    (
        "business.contact-info.postal.country",
        &[Physical, Demographic],
    ),
    ("business.contact-info.telecom.telephone", &[Physical]),
    ("business.contact-info.online.email", &[Online]),
    ("business.contact-info.online.uri", &[Online]),
];

/// True when `reference` names a node of the base data schema, either a
/// leaf or an interior node (a proper prefix of some leaf path).
pub fn is_known(reference: &str) -> bool {
    BASE_SCHEMA.iter().any(|(path, _)| {
        *path == reference
            || (path.len() > reference.len()
                && path.starts_with(reference)
                && path.as_bytes()[reference.len()] == b'.')
    })
}

/// The leaves covered by `reference`: the leaf itself, or every leaf
/// under an interior node. Referencing `user.name` collects all six
/// name fields (P3P §5.5: a reference to a set includes its members).
pub fn leaves_of(reference: &str) -> Vec<&'static str> {
    BASE_SCHEMA
        .iter()
        .filter(|(path, _)| {
            *path == reference
                || (path.len() > reference.len()
                    && path.starts_with(reference)
                    && path.as_bytes()[reference.len()] == b'.')
        })
        .map(|(path, _)| *path)
        .collect()
}

/// The categories the base schema fixes for `reference`: the union of
/// the categories of every leaf it covers. For a reference below a leaf
/// (not expected with the published schema, but tolerated), the nearest
/// ancestor leaf's categories apply. Unknown references yield no
/// categories — their policies must declare categories explicitly, as
/// `dynamic.miscdata` does.
pub fn categories_of(reference: &str) -> Vec<Category> {
    let mut out: Vec<Category> = Vec::new();
    let mut push_all = |cats: &[Category]| {
        for c in cats {
            if !out.contains(c) {
                out.push(*c);
            }
        }
    };
    let mut found = false;
    for (path, cats) in BASE_SCHEMA {
        let covered = *path == reference
            || (path.len() > reference.len()
                && path.starts_with(reference)
                && path.as_bytes()[reference.len()] == b'.');
        if covered {
            found = true;
            push_all(cats);
        }
    }
    if !found {
        // Walk up: nearest ancestor leaf.
        for (path, cats) in BASE_SCHEMA {
            if reference.len() > path.len()
                && reference.starts_with(path)
                && reference.as_bytes()[path.len()] == b'.'
            {
                push_all(cats);
            }
        }
    }
    out
}

/// Number of leaves in the base schema (used by benches to size the
/// augmentation work).
pub fn leaf_count() -> usize {
    BASE_SCHEMA.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_nonempty_and_paths_unique() {
        assert!(BASE_SCHEMA.len() >= 90);
        let mut paths: Vec<&str> = BASE_SCHEMA.iter().map(|(p, _)| *p).collect();
        paths.sort_unstable();
        let before = paths.len();
        paths.dedup();
        assert_eq!(paths.len(), before, "duplicate schema paths");
    }

    #[test]
    fn leaf_lookup_exact() {
        assert_eq!(
            categories_of("user.home-info.online.email"),
            vec![Category::Online]
        );
        assert_eq!(categories_of("user.bdate"), vec![Category::Demographic]);
    }

    #[test]
    fn interior_lookup_unions_leaves() {
        let cats = categories_of("user.name");
        assert!(cats.contains(&Category::Physical));
        assert!(cats.contains(&Category::Demographic));
        let postal = categories_of("user.home-info.postal");
        assert_eq!(postal, vec![Category::Physical, Category::Demographic]);
    }

    #[test]
    fn top_level_user_covers_many_categories() {
        let cats = categories_of("user");
        for c in [
            Category::Physical,
            Category::Demographic,
            Category::Online,
            Category::UniqueId,
        ] {
            assert!(cats.contains(&c), "missing {c}");
        }
    }

    #[test]
    fn variable_category_elements_have_no_fixed_categories() {
        assert!(categories_of("dynamic.miscdata").is_empty());
        assert!(categories_of("dynamic.cookies").is_empty());
    }

    #[test]
    fn unknown_reference_has_no_categories() {
        assert!(categories_of("custom.survey.answers").is_empty());
        assert!(!is_known("custom.survey.answers"));
    }

    #[test]
    fn below_leaf_reference_inherits_ancestor() {
        // Not a real schema node, but a sub-reference should inherit.
        assert_eq!(
            categories_of("user.bdate.ymd.year"),
            vec![Category::Demographic]
        );
    }

    #[test]
    fn is_known_for_interior_and_leaf() {
        assert!(is_known("user"));
        assert!(is_known("user.name"));
        assert!(is_known("user.name.given"));
        assert!(!is_known("user.nam"));
    }

    #[test]
    fn leaves_of_expands_sets() {
        assert_eq!(leaves_of("user.name").len(), 6);
        assert_eq!(leaves_of("user.home-info.online.email").len(), 1);
        assert!(leaves_of("nonexistent").is_empty());
        // No false prefix matches: `user.nam` must not match `user.name.*`.
        assert!(leaves_of("user.nam").is_empty());
    }

    #[test]
    fn thirdparty_mirrors_user() {
        assert_eq!(
            categories_of("thirdparty.home-info.postal"),
            categories_of("user.home-info.postal")
        );
    }
}
