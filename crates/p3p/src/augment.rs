//! Shred-time category augmentation on the policy model.
//!
//! The server-centric architecture performs the base-data-schema
//! category augmentation **once, while shredding** the policy into
//! relational tables, instead of on every match as the native APPEL
//! engine must (paper §6.3.2: "Our SQL implementation ... does this
//! expansion while shredding the policy into relational tables, and
//! incurs no corresponding cost at the time of preference checking").
//!
//! Augmentation does two things to every [`DataRef`]:
//!
//! 1. extends its explicit categories with the categories the base data
//!    schema fixes for the referenced element(s);
//! 2. expands *set* references (`user.name`) by appending one
//!    [`DataRef`] per covered leaf (`user.name.given`, …), each carrying
//!    that leaf's categories, so preferences that name leaf elements
//!    match policies that declare sets.

use crate::base_schema;
use crate::model::{DataRef, Policy, Statement};

/// Return an augmented copy of a policy.
pub fn augment_policy(policy: &Policy) -> Policy {
    let mut out = policy.clone();
    for stmt in &mut out.statements {
        augment_statement(stmt);
    }
    out
}

/// Augment one statement in place.
pub fn augment_statement(stmt: &mut Statement) {
    for group in &mut stmt.data_groups {
        let mut present: Vec<String> = group.data.iter().map(|d| d.reference.clone()).collect();
        let mut additions: Vec<DataRef> = Vec::new();
        for d in &mut group.data {
            let effective = d.effective_categories();
            d.categories = effective;
            for leaf in expansion_of(d) {
                // Idempotence: a leaf already declared (explicitly or by
                // a previous augmentation pass) is not added again.
                if !present.contains(&leaf.reference) {
                    present.push(leaf.reference.clone());
                    additions.push(leaf);
                }
            }
        }
        group.data.extend(additions);
    }
}

/// The leaf expansions a set reference contributes (empty for leaves
/// and unknown references).
pub fn expansion_of(d: &DataRef) -> Vec<DataRef> {
    let leaves = base_schema::leaves_of(&d.reference);
    if leaves.len() == 1 && leaves[0] == d.reference {
        return Vec::new();
    }
    leaves
        .into_iter()
        .map(|leaf| {
            let mut leaf_ref = DataRef::new(leaf);
            leaf_ref.optional = d.optional;
            leaf_ref.categories = base_schema::categories_of(leaf);
            leaf_ref
        })
        .collect()
}

/// Is this policy a fixed point of augmentation?
pub fn is_augmented(policy: &Policy) -> bool {
    &augment_policy(policy) == policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::volga_policy;
    use crate::vocab::Category;

    #[test]
    fn volga_augmentation_expands_sets_and_categories() {
        let aug = augment_policy(&volga_policy());
        let s1 = &aug.statements[0];
        let refs: Vec<&str> = s1.data_groups[0]
            .data
            .iter()
            .map(|d| d.reference.as_str())
            .collect();
        // Original three refs survive...
        assert!(refs.contains(&"user.name"));
        assert!(refs.contains(&"dynamic.miscdata"));
        // ...and the user.name set gained its six leaves.
        assert!(refs.contains(&"user.name.given"));
        assert!(refs.contains(&"user.name.family"));
        assert_eq!(refs.len(), 3 + 6 + 7); // name leaves + postal leaves

        // The set reference itself carries the union of leaf categories.
        let name_ref = s1.data_groups[0]
            .data
            .iter()
            .find(|d| d.reference == "user.name")
            .unwrap();
        assert!(name_ref.categories.contains(&Category::Physical));
        assert!(name_ref.categories.contains(&Category::Demographic));
    }

    #[test]
    fn augmentation_is_idempotent() {
        let once = augment_policy(&volga_policy());
        let twice = augment_policy(&once);
        assert_eq!(once, twice);
        assert!(is_augmented(&once));
        assert!(!is_augmented(&volga_policy()));
    }

    #[test]
    fn leaf_reference_gains_no_expansion() {
        let d = DataRef::new("user.bdate");
        assert!(expansion_of(&d).is_empty());
    }

    #[test]
    fn unknown_reference_untouched() {
        let d = DataRef::new("custom.thing").with_categories([Category::Preference]);
        assert!(expansion_of(&d).is_empty());
        let mut p = Policy::new("p");
        p.statements.push(Statement {
            data_groups: vec![crate::model::DataGroup {
                base: None,
                data: vec![d.clone()],
            }],
            ..Statement::default()
        });
        let aug = augment_policy(&p);
        assert_eq!(aug.statements[0].data_groups[0].data, vec![d]);
    }

    #[test]
    fn optional_flag_propagates_to_leaves() {
        let d = DataRef::new("user.name").optional();
        let exp = expansion_of(&d);
        assert_eq!(exp.len(), 6);
        assert!(exp.iter().all(|l| l.optional));
    }

    #[test]
    fn explicit_categories_preserved_and_deduped() {
        let mut p = Policy::new("p");
        p.statements.push(Statement {
            data_groups: vec![crate::model::DataGroup {
                base: None,
                data: vec![DataRef::new("user.bdate").with_categories([Category::Demographic])],
            }],
            ..Statement::default()
        });
        let aug = augment_policy(&p);
        assert_eq!(
            aug.statements[0].data_groups[0].data[0].categories,
            vec![Category::Demographic]
        );
    }
}
