//! End-to-end run over the full synthetic workload: the whole §6
//! experiment, asserted rather than timed.

use p3p_suite::appel::model::Behavior;
use p3p_suite::policy::augment::augment_policy;
use p3p_suite::policy::reference::{PolicyRef, ReferenceFile};
use p3p_suite::server::view::reconstruct_policy;
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::workload::{corpus, corpus_stats, Sensitivity};

fn full_server() -> PolicyServer {
    let mut server = PolicyServer::new();
    for p in corpus(42) {
        server.install_policy(&p).unwrap();
    }
    server
}

#[test]
fn corpus_installs_and_engines_agree_everywhere() {
    let mut server = full_server();
    let names = server.policy_names();
    assert_eq!(names.len(), 29);
    for level in Sensitivity::ALL {
        let ruleset = level.ruleset();
        for name in &names {
            let native = server
                .match_preference(&ruleset, Target::Policy(name), EngineKind::Native)
                .unwrap();
            for engine in [
                EngineKind::Sql,
                EngineKind::SqlGeneric,
                EngineKind::XQueryNative,
            ] {
                let got = server
                    .match_preference(&ruleset, Target::Policy(name), engine)
                    .unwrap();
                assert_eq!(
                    got.verdict, native.verdict,
                    "{engine:?} vs native on {name} at {level:?}"
                );
            }
            match server.match_preference(&ruleset, Target::Policy(name), EngineKind::XQueryXTable)
            {
                Ok(got) => assert_eq!(got.verdict, native.verdict, "xtable on {name} at {level:?}"),
                Err(_) => assert_eq!(
                    level,
                    Sensitivity::Medium,
                    "XTABLE must only fail on Medium"
                ),
            }
        }
    }
}

#[test]
fn verdict_counts_are_monotone_in_strictness() {
    // A stricter preference never blocks fewer policies.
    let mut server = full_server();
    let names = server.policy_names();
    let blocks = |server: &mut PolicyServer, s: Sensitivity| -> usize {
        let rs = s.ruleset();
        names
            .iter()
            .filter(|n| {
                server
                    .match_preference(&rs, Target::Policy(n), EngineKind::Sql)
                    .unwrap()
                    .verdict
                    .behavior
                    == Behavior::Block
            })
            .count()
    };
    let very_high = blocks(&mut server, Sensitivity::VeryHigh);
    let high = blocks(&mut server, Sensitivity::High);
    let medium = blocks(&mut server, Sensitivity::Medium);
    let low = blocks(&mut server, Sensitivity::Low);
    let very_low = blocks(&mut server, Sensitivity::VeryLow);
    assert!(very_high >= high, "{very_high} < {high}");
    assert!(high >= medium, "{high} < {medium}");
    assert!(medium >= low, "{medium} < {low}");
    assert!(low >= very_low, "{low} < {very_low}");
    assert_eq!(very_low, 0, "Very Low accepts everything");
    assert!(very_high > 0, "Very High must block something");
}

#[test]
fn reference_file_routes_every_site_uri() {
    let mut server = full_server();
    let policies = corpus(42);
    let mut file = ReferenceFile::default();
    for p in &policies {
        let mut r = PolicyRef::new(format!("/p3p/policies.xml#{}", p.name));
        r.includes.push(format!("/site/{}/*", p.name));
        file.policy_refs.push(r);
    }
    server.install_reference(&file).unwrap();
    for p in &policies {
        let uri = format!("/site/{}/index.html", p.name);
        let via_uri = server.resolve(Target::Uri(&uri)).unwrap();
        let via_name = server.resolve(Target::Policy(&p.name)).unwrap();
        assert_eq!(via_uri, via_name, "routing mismatch for {uri}");
    }
    assert!(server.resolve(Target::Uri("/elsewhere")).is_err());
}

#[test]
fn every_corpus_policy_reconstructs_from_its_tables() {
    let server = full_server();
    for p in corpus(42) {
        let id = server.policy_id(&p.name).unwrap();
        let rebuilt = reconstruct_policy(server.database(), id).unwrap();
        let expected = augment_policy(&p);
        assert_eq!(rebuilt.name, expected.name);
        assert_eq!(rebuilt.statements.len(), expected.statements.len());
        for (r, e) in rebuilt.statements.iter().zip(&expected.statements) {
            assert_eq!(r.purposes, e.purposes, "policy {}", p.name);
            assert_eq!(r.recipients, e.recipients, "policy {}", p.name);
            assert_eq!(r.retention, e.retention, "policy {}", p.name);
            let rd: Vec<_> = r.data_groups.iter().flat_map(|g| g.data.iter()).collect();
            let ed: Vec<_> = e.data_groups.iter().flat_map(|g| g.data.iter()).collect();
            assert_eq!(rd, ed, "policy {}", p.name);
        }
    }
}

#[test]
fn corpus_statistics_hold_for_other_seeds_too() {
    // The generator's published-statistics guarantee is seed-stable.
    for seed in [1, 7, 99] {
        let stats = corpus_stats(&corpus(seed));
        assert_eq!(stats.policies, 29, "seed {seed}");
        assert_eq!(stats.total_statements, 54, "seed {seed}");
        assert!((stats.avg_kb - 4.4).abs() < 0.5, "seed {seed}: {stats:?}");
    }
}

#[test]
fn removal_and_reinstall_are_clean_at_scale() {
    let mut server = full_server();
    let policies = corpus(42);
    let rows_before = server.database().total_rows();
    for p in policies.iter().take(10) {
        server.remove_policy(&p.name).unwrap();
    }
    for p in policies.iter().take(10) {
        server.install_policy(p).unwrap();
    }
    // Row counts return to the original level (ids differ, data equal).
    assert_eq!(server.database().total_rows(), rows_before);
    // And matching still works.
    let outcome = server
        .match_preference(
            &Sensitivity::Low.ruleset(),
            Target::Policy(&policies[0].name),
            EngineKind::Sql,
        )
        .unwrap();
    assert!(outcome.verdict.fired_rule.is_some());
}
