//! Round-trip property tests for the XML layer, over the same seeded
//! generators the differential fuzzer uses: for any generated policy
//! or APPEL ruleset, `parse(serialize(parse(x)))` must be
//! node-identical to `parse(x)` — same element tree, same namespace
//! prefixes, same attribute order — in both the compact and the
//! pretty serialization.

use p3p_appel::Ruleset;
use p3p_policy::Policy;
use p3p_workload::gen::{gen_corpus, gen_ruleset, GenConfig};
use p3p_workload::rng::SmallRng;
use p3p_xmldom::{parse_element, Element, ElementBuilder};

/// parse → serialize → parse must reach a fixpoint immediately.
fn assert_roundtrip(xml: &str) {
    let first = parse_element(xml).expect("generated XML parses");
    let second = parse_element(&first.to_xml()).expect("serialized XML reparses");
    assert_eq!(first, second, "compact round trip of {xml}");
    let pretty = parse_element(&first.to_pretty_xml()).expect("pretty XML reparses");
    assert_eq!(first, pretty, "pretty round trip of {xml}");
}

#[test]
fn generated_policies_roundtrip_node_identical() {
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        for policy in gen_corpus(&mut rng, 3, &GenConfig::default()) {
            assert_roundtrip(&policy.to_xml());
            // And the model-level round trip agrees with the DOM one.
            assert_eq!(Policy::parse(&policy.to_xml()).unwrap(), policy);
        }
    }
}

#[test]
fn generated_rulesets_roundtrip_with_namespace_prefixes() {
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ruleset = gen_ruleset(&mut rng, &GenConfig::default());
        let xml = ruleset.to_xml();
        assert_roundtrip(&xml);
        // The appel: prefix must survive: RULESET/RULE/OTHERWISE and
        // the connective attributes are namespaced, the P3P pattern
        // elements are not.
        let dom = parse_element(&xml).unwrap();
        assert_eq!(dom.name.prefix.as_deref(), Some("appel"));
        let reparsed = parse_element(&dom.to_xml()).unwrap();
        assert_eq!(reparsed.name.prefix.as_deref(), Some("appel"));
        assert_eq!(Ruleset::parse(&xml).unwrap(), ruleset);
    }
}

#[test]
fn attribute_order_is_preserved_verbatim() {
    // Equality on Element is order-sensitive for attributes, so the
    // round trip must keep the author's order, not normalize it.
    let a = parse_element(r##"<DATA ref="#user.name" optional="yes"/>"##).unwrap();
    let b = parse_element(r##"<DATA optional="yes" ref="#user.name"/>"##).unwrap();
    assert_ne!(a, b);
    assert_roundtrip(r##"<DATA ref="#user.name" optional="yes"/>"##);
    assert_roundtrip(r##"<DATA optional="yes" ref="#user.name"/>"##);
    assert!(a.to_xml().starts_with(r##"<DATA ref="#user.name""##));
    assert!(b.to_xml().starts_with(r##"<DATA optional="yes""##));
}

#[test]
fn escaped_content_survives_the_round_trip() {
    let tricky = ElementBuilder::new("CONSEQUENCE")
        .attr("note", "ads & \"targeting\" <soon>")
        .text("we use <your> data & we say so")
        .build();
    let xml = tricky.to_xml();
    let reparsed = parse_element(&xml).unwrap();
    assert_eq!(reparsed, tricky);
    assert_eq!(reparsed.attr("note"), Some("ads & \"targeting\" <soon>"));
    assert_eq!(reparsed.text(), "we use <your> data & we say so");
}

#[test]
fn deeply_prefixed_elements_keep_their_prefixes() {
    let xml = r#"<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY><STATEMENT appel:connective="non-and"><PURPOSE><telemarketing/></PURPOSE></STATEMENT></POLICY>
  </appel:RULE>
</appel:RULESET>"#;
    let dom = parse_element(xml).unwrap();
    let reparsed = parse_element(&dom.to_xml()).unwrap();
    assert_eq!(dom, reparsed);
    // The connective attribute keeps its prefix on the reparsed tree.
    let mut found = Vec::new();
    reparsed.walk(&mut |e: &Element| {
        if e.name.local == "STATEMENT" {
            found.push(e.attributes.clone());
        }
    });
    assert_eq!(found.len(), 1);
    assert_eq!(found[0][0].name.prefix.as_deref(), Some("appel"));
    assert_eq!(found[0][0].name.local, "connective");
}
