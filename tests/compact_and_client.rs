//! Integration tests for the client-centric surfaces the paper surveys
//! in §3: compact policies (IE6's cookie filtering) and the native
//! APPEL engine used standalone, plus their consistency with the
//! server-side machinery.

use p3p_suite::appel::engine::AppelEngine;
use p3p_suite::appel::model::Behavior;
use p3p_suite::policy::compact::{evaluate_cookie, CompactPolicy, CookiePreference, CookieVerdict};
use p3p_suite::policy::model::volga_policy;
use p3p_suite::workload::{corpus, Sensitivity};

#[test]
fn compact_policies_derive_for_the_whole_corpus() {
    for p in corpus(42) {
        let cp = CompactPolicy::from_policy(&p);
        assert!(
            !cp.tokens.is_empty(),
            "{} has an empty compact policy",
            p.name
        );
        // Header round-trip.
        let header = cp.to_header();
        assert_eq!(CompactPolicy::parse_header(&header), cp, "{}", p.name);
        // Every policy collects something for the current transaction.
        assert!(
            cp.tokens.iter().any(|t| t.as_str() == "CUR"),
            "{} lacks CUR: {header}",
            p.name
        );
    }
}

#[test]
fn ie6_low_never_blocks_and_blockall_blocks_identified_collection() {
    for p in corpus(42) {
        let cp = CompactPolicy::from_policy(&p);
        assert_eq!(
            evaluate_cookie(&cp, CookiePreference::Low),
            CookieVerdict::Accept,
            "{}",
            p.name
        );
    }
    // Every corpus policy collects user.name (physical) in its first
    // statement, so the paranoid setting blocks them all.
    for p in corpus(42) {
        let cp = CompactPolicy::from_policy(&p);
        assert_eq!(
            evaluate_cookie(&cp, CookiePreference::BlockAll),
            CookieVerdict::Block,
            "{}",
            p.name
        );
    }
}

#[test]
fn ie6_medium_tracks_undisclosed_sharing() {
    // The compact-policy verdict at Medium must agree with whether the
    // full policy names unrelated/public recipients unconditionally.
    for p in corpus(42) {
        let cp = CompactPolicy::from_policy(&p);
        let shares = p.statements.iter().any(|s| {
            s.recipients.iter().any(|r| {
                matches!(
                    r.recipient,
                    p3p_suite::policy::Recipient::Unrelated | p3p_suite::policy::Recipient::Public
                ) && r.required == p3p_suite::policy::Required::Always
            })
        });
        let verdict = evaluate_cookie(&cp, CookiePreference::Medium);
        assert_eq!(
            verdict == CookieVerdict::Block,
            shares,
            "{}: verdict {verdict:?}, shares {shares}",
            p.name
        );
    }
}

#[test]
fn native_engine_is_usable_standalone_as_a_client_would() {
    // The client-centric deployment: no server, just policy text and
    // the engine.
    let engine = AppelEngine::default();
    let ruleset = Sensitivity::High.ruleset();
    let xml = volga_policy().to_xml();
    let verdict = engine.evaluate_policy_xml(&ruleset, &xml).unwrap();
    assert_eq!(verdict.behavior, Behavior::Request);
}

#[test]
fn engine_options_expose_the_ablation_knobs() {
    use p3p_suite::appel::engine::EngineOptions;
    let defaults = EngineOptions::default();
    assert!(defaults.augment_categories);
    assert!(defaults.rebuild_schema_per_match);
    let engine = AppelEngine::with_options(EngineOptions {
        augment_categories: false,
        rebuild_schema_per_match: false,
    });
    assert!(!engine.options().augment_categories);
}

#[test]
fn schema_document_is_stable_and_parseable() {
    let text = p3p_suite::appel::engine::schema_document_text();
    let doc = p3p_suite::xmldom::parse_element(text).unwrap();
    assert_eq!(doc.name.local, "DATASCHEMA");
    assert_eq!(
        doc.child_elements().count(),
        p3p_suite::policy::base_schema::leaf_count()
    );
}
