//! Integration test: the paper's §2 walk-through, executed through the
//! public API of the umbrella crate, across every engine.

use p3p_suite::appel::model::{jane_preference, Behavior};
use p3p_suite::appel::Ruleset;
use p3p_suite::policy::model::volga_policy;
use p3p_suite::policy::Required;
use p3p_suite::server::{EngineKind, PolicyServer, Target};

#[test]
fn volga_conforms_to_jane_on_every_engine() {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    for engine in EngineKind::ALL {
        let outcome = server
            .match_preference(&jane_preference(), Target::Policy("volga"), *engine)
            .unwrap();
        assert_eq!(outcome.verdict.behavior, Behavior::Request, "{engine:?}");
        assert_eq!(outcome.verdict.fired_rule, Some(2), "{engine:?}");
    }
}

#[test]
fn the_papers_counterfactuals_hold_on_every_engine() {
    // §2.2: "if individual-decision was not specified as opt-in ...
    // the first rule in Jane's preferences would have fired".
    let mut no_optin = volga_policy();
    no_optin.name = "no-optin".to_string();
    no_optin.statements[1].purposes[0].required = Required::Always;

    // And adding an unrelated recipient fires the second rule.
    let mut leaky = volga_policy();
    leaky.name = "leaky".to_string();
    leaky.statements[0]
        .recipients
        .push(p3p_suite::policy::model::RecipientUse::always(
            p3p_suite::policy::Recipient::Unrelated,
        ));

    let mut server = PolicyServer::new();
    server.install_policy(&no_optin).unwrap();
    server.install_policy(&leaky).unwrap();

    for engine in EngineKind::ALL {
        let first = server
            .match_preference(&jane_preference(), Target::Policy("no-optin"), *engine)
            .unwrap();
        assert_eq!(first.verdict.behavior, Behavior::Block, "{engine:?}");
        assert_eq!(first.verdict.fired_rule, Some(0), "{engine:?}");

        let second = server
            .match_preference(&jane_preference(), Target::Policy("leaky"), *engine)
            .unwrap();
        assert_eq!(second.verdict.behavior, Behavior::Block, "{engine:?}");
        assert_eq!(second.verdict.fired_rule, Some(1), "{engine:?}");
    }
}

#[test]
fn jane_preference_roundtrips_as_xml_and_still_matches() {
    // Parse Jane's preference from its own serialization and rerun.
    let xml = jane_preference().to_xml();
    let reparsed = Ruleset::parse(&xml).unwrap();
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    let outcome = server
        .match_preference(&reparsed, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    assert_eq!(outcome.verdict.behavior, Behavior::Request);
}

#[test]
fn policy_roundtrips_as_xml_and_still_matches() {
    let xml = volga_policy().to_xml();
    let mut server = PolicyServer::new();
    server.install_policy_xml(&xml).unwrap();
    let outcome = server
        .match_preference(
            &jane_preference(),
            Target::Policy("volga"),
            EngineKind::Native,
        )
        .unwrap();
    assert_eq!(outcome.verdict.behavior, Behavior::Request);
}

#[test]
fn figure_12_simplified_rule_behaves_as_figure_13_predicts() {
    // The simplified first rule (paper Fig. 12) must not fire against
    // Volga (no admin purpose; contact only opt-in).
    let rule = r#"<appel:RULESET>
        <appel:RULE behavior="block">
          <POLICY><STATEMENT>
            <PURPOSE appel:connective="or">
              <admin/>
              <contact required="always"/>
            </PURPOSE>
          </STATEMENT></POLICY>
        </appel:RULE>
      </appel:RULESET>"#;
    let ruleset = Ruleset::parse(rule).unwrap();
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    for engine in EngineKind::ALL {
        let outcome = server
            .match_preference(&ruleset, Target::Policy("volga"), *engine)
            .unwrap();
        // No rule fires → fail-safe block with no fired rule recorded.
        assert_eq!(outcome.verdict.fired_rule, None, "{engine:?}");
    }
}
