//! Integration coverage for the suite's extension modules through the
//! umbrella crate's public API: enforcement, versioning, hybrid
//! clients, concurrency, subset analysis, custom schemas, and EXPLAIN.

use p3p_suite::appel::model::Behavior;
use p3p_suite::policy::model::volga_policy;
use p3p_suite::policy::vocab::{Purpose, Recipient};
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::workload::Sensitivity;

#[test]
fn enforcement_flow_end_to_end() {
    use p3p_suite::server::enforce::{check_access, install, record_opt_in, AccessRequest};
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    install(&mut server).unwrap();
    let request = AccessRequest {
        policy: "volga".to_string(),
        user: "jane".to_string(),
        data_ref: "user.home-info.online.email".to_string(),
        purpose: Purpose::Contact,
        recipient: Recipient::Ours,
    };
    assert!(!check_access(&mut server, &request).unwrap().is_allowed());
    record_opt_in(&mut server, "volga", "jane", Purpose::Contact).unwrap();
    assert!(check_access(&mut server, &request).unwrap().is_allowed());
}

#[test]
fn versioning_flow_end_to_end() {
    use p3p_suite::server::versioning::{diff_versions, history, rollback, upgrade_policy};
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    let mut v2 = volga_policy();
    v2.statements[0]
        .recipients
        .push(p3p_suite::policy::model::RecipientUse::always(
            Recipient::Unrelated,
        ));
    assert_eq!(
        upgrade_policy(&mut server, &v2, "share with partners").unwrap(),
        2
    );
    let d = diff_versions(&server, "volga", 1, 2).unwrap();
    assert_eq!(d.recipients_added, vec!["unrelated (always)"]);
    // The upgrade flips the Low preference's verdict; rollback restores.
    let low = Sensitivity::Low.ruleset();
    let blocked = server
        .match_preference(&low, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    assert_eq!(blocked.verdict.behavior, Behavior::Block);
    rollback(&mut server, "volga", 1).unwrap();
    let ok = server
        .match_preference(&low, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    assert_eq!(ok.verdict.behavior, Behavior::Request);
    assert_eq!(history(&server, "volga").unwrap().len(), 3);
}

#[test]
fn hybrid_client_caches_and_agrees() {
    use p3p_suite::policy::reference::{PolicyRef, ReferenceFile};
    use p3p_suite::server::hybrid::HybridClient;
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    let mut file = ReferenceFile::default();
    let mut r = PolicyRef::new("#volga");
    r.includes.push("/*".to_string());
    file.policy_refs.push(r);
    let mut client = HybridClient::new(file);
    let jane = p3p_suite::appel::model::jane_preference();
    for page in ["/a", "/b", "/c"] {
        let v = client
            .check_request(&mut server, &jane, page, EngineKind::Sql)
            .unwrap();
        assert_eq!(v.behavior, Behavior::Request);
    }
    assert_eq!(client.stats().server_matches, 1);
    assert_eq!(client.stats().cache_hits, 2);
}

#[test]
fn concurrent_pool_matches_in_parallel() {
    use p3p_suite::server::concurrent::{MatchPool, SharedServer};
    let shared = SharedServer::new(PolicyServer::new());
    shared.install_policy(&volga_policy()).unwrap();
    let pool = MatchPool::new(&shared);
    let jane = p3p_suite::appel::model::jane_preference();
    let verdicts: Vec<Behavior> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let pool = &pool;
                let jane = &jane;
                scope.spawn(move || {
                    pool.match_preference(jane, Target::Policy("volga"), EngineKind::Sql)
                        .unwrap()
                        .verdict
                        .behavior
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert!(verdicts.iter().all(|b| *b == Behavior::Request));
}

#[test]
fn subset_analysis_over_the_jrc_suite() {
    use p3p_suite::server::subset::{sql_subset, xquery_subset};
    let prefs: Vec<_> = Sensitivity::ALL.iter().map(|s| s.ruleset()).collect();
    let sql = sql_subset(&prefs, false).unwrap();
    assert!(sql.exists > 0);
    assert_eq!(sql.likes + sql.in_lists + sql.aggregates, 0);
    let xq = xquery_subset(&prefs).unwrap();
    assert_eq!(xq.exactness, 1);
}

#[test]
fn custom_schema_flow_end_to_end() {
    use p3p_suite::policy::model::{DataRef, Statement};
    use p3p_suite::policy::vocab::Retention;
    use p3p_suite::policy::DataSchema;
    let schema = DataSchema::parse(
        r##"<DATASCHEMA>
              <DATA-DEF ref="#loyalty.card.number"><CATEGORIES><uniqueid/></CATEGORIES></DATA-DEF>
              <DATA-DEF ref="#loyalty.tier"><CATEGORIES><preference/></CATEGORIES></DATA-DEF>
            </DATASCHEMA>"##,
    )
    .unwrap();
    let mut policy = p3p_suite::policy::model::Policy::new("store");
    policy.statements.push(Statement::simple(
        [Purpose::Current],
        [Recipient::Ours],
        Retention::StatedPurpose,
        [DataRef::new("loyalty")],
    ));
    let mut server = PolicyServer::new();
    server
        .install_policy_with_schemas(&policy, &[schema])
        .unwrap();
    // A category rule over the custom schema's category fires everywhere.
    let pref = p3p_suite::appel::Ruleset::parse(
        r##"<appel:RULESET><appel:RULE behavior="block">
              <POLICY><STATEMENT><DATA-GROUP><DATA>
                <CATEGORIES appel:connective="or"><preference/></CATEGORIES>
              </DATA></DATA-GROUP></STATEMENT></POLICY>
            </appel:RULE></appel:RULESET>"##,
    )
    .unwrap();
    for engine in [EngineKind::Native, EngineKind::Sql, EngineKind::SqlGeneric] {
        let out = server
            .match_preference(&pref, Target::Policy("store"), engine)
            .unwrap();
        assert_eq!(out.verdict.behavior, Behavior::Block, "{engine:?}");
    }
}

#[test]
fn explain_shows_probes_on_the_shredded_schema() {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    let plan = p3p_suite::minidb::explain(
        server.database(),
        "SELECT name FROM policy p WHERE p.policy_id = 1 AND EXISTS (\
           SELECT * FROM statement s WHERE s.policy_id = p.policy_id AND EXISTS (\
             SELECT * FROM purpose pu WHERE pu.policy_id = s.policy_id AND pu.statement_id = s.statement_id))",
    )
    .unwrap();
    assert!(
        plan.contains("index nested loop policy AS p on (policy_id)"),
        "{plan}"
    );
    assert!(plan.contains("index nested loop statement AS s"), "{plan}");
    assert!(plan.contains("index nested loop purpose AS pu"), "{plan}");
}
