//! The suite's central property: every matching engine implements the
//! same preference-matching semantics.
//!
//! Random P3P policies and random APPEL rules are generated; the
//! verdicts of the native APPEL engine, the SQL path over both schemas,
//! and the XQuery-on-XML-store path must coincide — and the
//! XQuery→XTABLE→SQL path must coincide whenever it can translate the
//! preference (exact connectives defeat it, as in the paper).
//!
//! Formerly `proptest` properties; the build environment has no
//! crates.io access, so each property now runs over a deterministic
//! stream of pseudo-random cases from an inline SplitMix64 generator.

use p3p_suite::appel::model::{Behavior, Connective, Expr, Rule, Ruleset};
use p3p_suite::policy::model::{DataGroup, DataRef, Policy, PurposeUse, RecipientUse, Statement};
use p3p_suite::policy::vocab::{Category, Purpose, Recipient, Required, Retention};
use p3p_suite::server::{EngineKind, PolicyServer, Target};

struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (((self.next() as u128) * (n as u128)) >> 64) as usize
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.index(options.len())]
    }
}

// --- policy generator ----------------------------------------------------

fn random_required(rng: &mut TestRng) -> Required {
    *rng.pick(&[Required::Always, Required::OptIn, Required::OptOut])
}

fn random_data_ref(rng: &mut TestRng) -> DataRef {
    const REFS: &[&str] = &[
        "user.name",
        "user.name.given",
        "user.bdate",
        "user.home-info.postal",
        "user.home-info.online.email",
        "dynamic.clickstream",
        "dynamic.cookies",
        "dynamic.miscdata",
    ];
    let mut d = DataRef::new(*rng.pick(REFS));
    d.optional = rng.index(2) == 1;
    let mut cats: Vec<Category> = (0..rng.index(2))
        .map(|_| *rng.pick(Category::ALL))
        .collect();
    cats.dedup();
    d.categories = cats;
    d
}

fn random_statement(rng: &mut TestRng) -> Statement {
    let mut purposes: Vec<PurposeUse> = (0..1 + rng.index(3))
        .map(|_| PurposeUse {
            purpose: *rng.pick(Purpose::ALL),
            required: random_required(rng),
        })
        .collect();
    let mut recipients: Vec<RecipientUse> = (0..1 + rng.index(2))
        .map(|_| RecipientUse {
            recipient: *rng.pick(Recipient::ALL),
            required: random_required(rng),
        })
        .collect();
    let retention = *rng.pick(Retention::ALL);
    let data: Vec<DataRef> = (0..rng.index(3)).map(|_| random_data_ref(rng)).collect();
    // P3P allows each purpose/recipient at most once per statement.
    purposes.sort_by_key(|p| p.purpose);
    purposes.dedup_by_key(|p| p.purpose);
    recipients.sort_by_key(|r| r.recipient);
    recipients.dedup_by_key(|r| r.recipient);
    Statement {
        consequence: None,
        non_identifiable: false,
        purposes,
        recipients,
        retention: vec![retention],
        data_groups: if data.is_empty() {
            vec![]
        } else {
            vec![DataGroup { base: None, data }]
        },
    }
}

fn random_policy(rng: &mut TestRng) -> Policy {
    let mut p = Policy::new("generated");
    p.statements = (0..1 + rng.index(3))
        .map(|_| random_statement(rng))
        .collect();
    p
}

// --- rule generator ------------------------------------------------------

fn random_connective(rng: &mut TestRng) -> Connective {
    *rng.pick(Connective::ALL)
}

/// A vocabulary container expression (PURPOSE/RECIPIENT/RETENTION) with
/// a random connective and random value children.
fn random_vocab_expr(rng: &mut TestRng) -> Expr {
    match rng.index(4) {
        0 => {
            let mut e = Expr::named("PURPOSE").with_connective(random_connective(rng));
            for _ in 0..1 + rng.index(3) {
                let p = *rng.pick(Purpose::ALL);
                let mut child = Expr::named(p.as_str());
                if rng.index(2) == 1 {
                    child = child.with_attr("required", random_required(rng).as_str());
                }
                e = e.with_child(child);
            }
            e
        }
        1 => {
            let mut e = Expr::named("RECIPIENT").with_connective(random_connective(rng));
            for _ in 0..1 + rng.index(2) {
                e = e.with_child(Expr::named(rng.pick(Recipient::ALL).as_str()));
            }
            e
        }
        2 => {
            let mut e = Expr::named("RETENTION").with_connective(random_connective(rng));
            for _ in 0..1 + rng.index(2) {
                e = e.with_child(Expr::named(rng.pick(Retention::ALL).as_str()));
            }
            e
        }
        _ => {
            const REFS: &[&str] = &[
                "#user.name",
                "#user.name.given",
                "#user.bdate",
                "#dynamic.cookies",
                "#dynamic.miscdata",
            ];
            let connective = random_connective(rng);
            let mut d = Expr::named("DATA").with_attr("ref", *rng.pick(REFS));
            let categories: Vec<Category> = (0..rng.index(3))
                .map(|_| *rng.pick(Category::ALL))
                .collect();
            if !categories.is_empty() {
                let mut cats = Expr::named("CATEGORIES").with_connective(connective);
                for c in categories {
                    cats = cats.with_child(Expr::named(c.as_str()));
                }
                d = d.with_child(cats);
            }
            Expr::named("DATA-GROUP").with_child(d)
        }
    }
}

fn random_rule(rng: &mut TestRng) -> Rule {
    let stmt_connective = loop {
        let c = random_connective(rng);
        if !c.is_exact() {
            break c; // rule-level exact unsupported
        }
    };
    let behavior = rng.pick(&[Behavior::Block, Behavior::Limited]).clone();
    let mut stmt = Expr::named("STATEMENT").with_connective(stmt_connective);
    for _ in 0..1 + rng.index(2) {
        stmt = stmt.with_child(random_vocab_expr(rng));
    }
    Rule::with_pattern(behavior, Expr::named("POLICY").with_child(stmt))
}

fn random_ruleset(rng: &mut TestRng) -> Ruleset {
    let mut rules: Vec<Rule> = (0..1 + rng.index(3)).map(|_| random_rule(rng)).collect();
    let mut fallback = Rule::unconditional(Behavior::Request);
    fallback.otherwise = true;
    rules.push(fallback);
    Ruleset::new(rules)
}

fn uses_exact(ruleset: &Ruleset) -> bool {
    fn expr_exact(e: &Expr) -> bool {
        e.connective.is_exact() || e.children.iter().any(expr_exact)
    }
    ruleset
        .rules
        .iter()
        .flat_map(|r| r.pattern.iter())
        .any(expr_exact)
}

/// The headline property: all engines agree on the verdict.
#[test]
fn all_engines_agree() {
    for seed in 0..64 {
        let mut rng = TestRng(seed);
        let policy = random_policy(&mut rng);
        let ruleset = random_ruleset(&mut rng);
        let mut server = PolicyServer::new();
        server.install_policy(&policy).unwrap();
        let reference = server
            .match_preference(&ruleset, Target::Policy("generated"), EngineKind::Native)
            .unwrap();
        for engine in [
            EngineKind::Sql,
            EngineKind::SqlGeneric,
            EngineKind::XQueryNative,
        ] {
            let got = server
                .match_preference(&ruleset, Target::Policy("generated"), engine)
                .unwrap();
            assert_eq!(
                &got.verdict,
                &reference.verdict,
                "seed {seed}: {:?} disagreed with native on policy:\n{}\npreference:\n{}",
                engine,
                policy.to_xml(),
                ruleset.to_xml()
            );
        }
        match server.match_preference(
            &ruleset,
            Target::Policy("generated"),
            EngineKind::XQueryXTable,
        ) {
            Ok(got) => assert_eq!(
                &got.verdict,
                &reference.verdict,
                "seed {seed}: XTABLE disagreed on policy:\n{}\npreference:\n{}",
                policy.to_xml(),
                ruleset.to_xml()
            ),
            Err(_) => assert!(
                uses_exact(&ruleset),
                "seed {seed}: XTABLE failed on a preference without exact connectives:\n{}",
                ruleset.to_xml()
            ),
        }
    }
}

/// Matching is insensitive to whether the policy was installed from the
/// model or from its XML serialization.
#[test]
fn xml_install_equals_model_install() {
    for seed in 0..64 {
        let mut rng = TestRng(seed);
        let policy = random_policy(&mut rng);
        let ruleset = random_ruleset(&mut rng);
        let mut a = PolicyServer::new();
        a.install_policy(&policy).unwrap();
        let mut b = PolicyServer::new();
        b.install_policy_xml(&policy.to_xml()).unwrap();
        let va = a
            .match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql)
            .unwrap();
        let vb = b
            .match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql)
            .unwrap();
        assert_eq!(va.verdict, vb.verdict, "seed {seed}");
    }
}

/// Warm caches never change verdicts: the full corpus × every
/// preference level, matched cold (fresh caches) and then twice more
/// against the now-warm translation and plan caches, must agree on
/// every engine.
#[test]
fn cached_plans_match_uncached_verdicts() {
    let mut server = PolicyServer::new();
    for p in p3p_suite::workload::corpus(42) {
        server.install_policy(&p).unwrap();
    }
    let names = server.policy_names();
    for sensitivity in p3p_suite::workload::Sensitivity::ALL {
        let ruleset = sensitivity.ruleset();
        for engine in EngineKind::ALL {
            for name in &names {
                let target = Target::Policy(name);
                let cold = server.match_preference(&ruleset, target, *engine);
                for pass in 0..2 {
                    let warm = server.match_preference(&ruleset, target, *engine);
                    match (&cold, &warm) {
                        (Ok(c), Ok(w)) => {
                            assert_eq!(
                                c.verdict, w.verdict,
                                "{engine:?} pass {pass} on {name} at {sensitivity:?}"
                            );
                            if matches!(engine, EngineKind::Sql | EngineKind::SqlGeneric) {
                                assert!(w.cached, "{engine:?} should reuse cached plans");
                            }
                        }
                        (Err(_), Err(_)) => {} // XTABLE on Medium, both passes
                        _ => panic!("{engine:?} cold/warm success disagreed on {name}"),
                    }
                }
            }
        }
    }
}

/// Installing a policy after the caches are warm must not serve stale
/// results: the cached bound plans see the new policy's rows, and the
/// new policy resolves through the same prepared plans.
#[test]
fn warm_caches_see_later_installs() {
    for seed in 0..16 {
        let mut rng = TestRng(seed);
        let first = random_policy(&mut rng);
        let mut second = random_policy(&mut rng);
        second.name = "second".to_string();
        let ruleset = random_ruleset(&mut rng);

        // Warm path: match `first`, install `second`, match `second`
        // through the now-warm caches.
        let mut warm = PolicyServer::new();
        warm.install_policy(&first).unwrap();
        warm.match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql)
            .unwrap();
        warm.install_policy(&second).unwrap();
        let got = warm
            .match_preference(&ruleset, Target::Policy("second"), EngineKind::Sql)
            .unwrap();
        assert!(got.cached, "seed {seed}: second match should hit the cache");

        // Cold reference: a fresh server that only ever saw `second`.
        let mut cold = PolicyServer::new();
        cold.install_policy(&second).unwrap();
        let reference = cold
            .match_preference(&ruleset, Target::Policy("second"), EngineKind::Sql)
            .unwrap();
        assert_eq!(got.verdict, reference.verdict, "seed {seed}");
    }
}

/// Every ordering of `n` indices, for the small `n` the FROM-shuffle
/// tests need.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    match n {
        2 => vec![vec![0, 1], vec![1, 0]],
        3 => vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ],
        _ => panic!("unsupported permutation size {n}"),
    }
}

/// Shuffling the FROM-clause order of representative translated join
/// queries never changes the result set — with the cost-based planner
/// on (it normalizes the order) and off (literal FROM order).
#[test]
fn join_order_permutations_agree() {
    let mut server = PolicyServer::new();
    for p in p3p_suite::workload::corpus(42) {
        server.install_policy(&p).unwrap();
    }
    let db = server.database().clone();
    let mut db_noplan = db.clone();
    db_noplan.set_use_planner(false);
    let sorted = |mut rows: Vec<Vec<p3p_suite::minidb::Value>>| {
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    };
    // (projection, FROM entries, WHERE) — the decorrelated-join shapes
    // of the suite's translated queries.
    let cases: &[(&str, &[&str], &str)] = &[
        (
            "DISTINCT p.policy_id",
            &["policy p", "statement s"],
            "s.policy_id = p.policy_id",
        ),
        (
            "DISTINCT p.policy_id",
            &["policy p", "statement s", "purpose pu"],
            "s.policy_id = p.policy_id AND pu.policy_id = s.policy_id \
             AND pu.statement_id = s.statement_id AND pu.purpose = 'current'",
        ),
        (
            "pu.purpose, r.recipient",
            &["purpose pu", "recipient r"],
            "r.policy_id = pu.policy_id AND r.statement_id = pu.statement_id \
             AND pu.required = 'opt-in'",
        ),
    ];
    for (projection, tables, filter) in cases {
        let mut reference: Option<Vec<Vec<p3p_suite::minidb::Value>>> = None;
        for perm in permutations(tables.len()) {
            let from: Vec<&str> = perm.iter().map(|&i| tables[i]).collect();
            let sql = format!(
                "SELECT {projection} FROM {} WHERE {filter}",
                from.join(", ")
            );
            let planned = sorted(db.query(&sql).unwrap().rows);
            let unplanned = sorted(db_noplan.query(&sql).unwrap().rows);
            assert_eq!(planned, unplanned, "planner on/off disagree: {sql}");
            match &reference {
                Some(expected) => assert_eq!(expected, &planned, "order-dependent: {sql}"),
                None => reference = Some(planned),
            }
        }
    }
}

/// The cost-based planner never changes SQL verdicts (only their
/// cost), across both relational schemas.
#[test]
fn planner_does_not_change_verdicts() {
    for seed in 0..64 {
        let mut rng = TestRng(seed);
        let policy = random_policy(&mut rng);
        let ruleset = random_ruleset(&mut rng);
        let mut planned = PolicyServer::new();
        planned.install_policy(&policy).unwrap();
        let mut unplanned = PolicyServer::new();
        unplanned.install_policy(&policy).unwrap();
        unplanned.database_mut().set_use_planner(false);
        for engine in [EngineKind::Sql, EngineKind::SqlGeneric] {
            let vp = planned
                .match_preference(&ruleset, Target::Policy("generated"), engine)
                .unwrap();
            let vu = unplanned
                .match_preference(&ruleset, Target::Policy("generated"), engine)
                .unwrap();
            assert_eq!(vp.verdict, vu.verdict, "seed {seed} {engine:?}");
        }
    }
}

/// Index use never changes SQL verdicts (only their cost).
#[test]
fn indexes_do_not_change_verdicts() {
    for seed in 0..64 {
        let mut rng = TestRng(seed);
        let policy = random_policy(&mut rng);
        let ruleset = random_ruleset(&mut rng);
        let mut fast = PolicyServer::new();
        fast.install_policy(&policy).unwrap();
        let mut slow = PolicyServer::new();
        slow.install_policy(&policy).unwrap();
        slow.database_mut().set_use_indexes(false);
        let vf = fast
            .match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql)
            .unwrap();
        let vs = slow
            .match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql)
            .unwrap();
        assert_eq!(vf.verdict, vs.verdict, "seed {seed}");
    }
}
