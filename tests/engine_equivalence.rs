//! The suite's central property: every matching engine implements the
//! same preference-matching semantics.
//!
//! Random P3P policies and random APPEL rules are generated; the
//! verdicts of the native APPEL engine, the SQL path over both schemas,
//! and the XQuery-on-XML-store path must coincide — and the
//! XQuery→XTABLE→SQL path must coincide whenever it can translate the
//! preference (exact connectives defeat it, as in the paper).

use p3p_suite::appel::model::{Behavior, Connective, Expr, Rule, Ruleset};
use p3p_suite::policy::model::{DataGroup, DataRef, Policy, PurposeUse, RecipientUse, Statement};
use p3p_suite::policy::vocab::{Category, Purpose, Recipient, Required, Retention};
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use proptest::prelude::*;

// --- policy generator ----------------------------------------------------

fn required_strategy() -> impl Strategy<Value = Required> {
    prop::sample::select(vec![Required::Always, Required::OptIn, Required::OptOut])
}

fn purpose_use_strategy() -> impl Strategy<Value = PurposeUse> {
    (
        prop::sample::select(Purpose::ALL.to_vec()),
        required_strategy(),
    )
        .prop_map(|(purpose, required)| PurposeUse { purpose, required })
}

fn recipient_use_strategy() -> impl Strategy<Value = RecipientUse> {
    (
        prop::sample::select(Recipient::ALL.to_vec()),
        required_strategy(),
    )
        .prop_map(|(recipient, required)| RecipientUse { recipient, required })
}

fn data_ref_strategy() -> impl Strategy<Value = DataRef> {
    let refs = vec![
        "user.name",
        "user.name.given",
        "user.bdate",
        "user.home-info.postal",
        "user.home-info.online.email",
        "dynamic.clickstream",
        "dynamic.cookies",
        "dynamic.miscdata",
    ];
    (
        prop::sample::select(refs),
        prop::bool::ANY,
        prop::collection::vec(prop::sample::select(Category::ALL.to_vec()), 0..2),
    )
        .prop_map(|(reference, optional, categories)| {
            let mut d = DataRef::new(reference);
            d.optional = optional;
            let mut cats = categories;
            cats.dedup();
            d.categories = cats;
            d
        })
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec(purpose_use_strategy(), 1..4),
        prop::collection::vec(recipient_use_strategy(), 1..3),
        prop::sample::select(Retention::ALL.to_vec()),
        prop::collection::vec(data_ref_strategy(), 0..3),
    )
        .prop_map(|(mut purposes, mut recipients, retention, data)| {
            // P3P allows each purpose/recipient at most once per
            // statement.
            purposes.sort_by_key(|p| p.purpose);
            purposes.dedup_by_key(|p| p.purpose);
            recipients.sort_by_key(|r| r.recipient);
            recipients.dedup_by_key(|r| r.recipient);
            Statement {
                consequence: None,
                non_identifiable: false,
                purposes,
                recipients,
                retention: vec![retention],
                data_groups: if data.is_empty() {
                    vec![]
                } else {
                    vec![DataGroup { base: None, data }]
                },
            }
        })
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop::collection::vec(statement_strategy(), 1..4).prop_map(|statements| {
        let mut p = Policy::new("generated");
        p.statements = statements;
        p
    })
}

// --- rule generator ------------------------------------------------------

fn connective_strategy() -> impl Strategy<Value = Connective> {
    prop::sample::select(Connective::ALL.to_vec())
}

/// A vocabulary container expression (PURPOSE/RECIPIENT/RETENTION) with
/// a random connective and random value children.
fn vocab_expr_strategy() -> impl Strategy<Value = Expr> {
    let purpose = (
        connective_strategy(),
        prop::collection::vec(
            (
                prop::sample::select(Purpose::ALL.to_vec()),
                prop::option::of(required_strategy()),
            ),
            1..4,
        ),
    )
        .prop_map(|(connective, values)| {
            let mut e = Expr::named("PURPOSE").with_connective(connective);
            for (p, r) in values {
                let mut child = Expr::named(p.as_str());
                if let Some(r) = r {
                    child = child.with_attr("required", r.as_str());
                }
                e = e.with_child(child);
            }
            e
        });
    let recipient = (
        connective_strategy(),
        prop::collection::vec(prop::sample::select(Recipient::ALL.to_vec()), 1..3),
    )
        .prop_map(|(connective, values)| {
            let mut e = Expr::named("RECIPIENT").with_connective(connective);
            for r in values {
                e = e.with_child(Expr::named(r.as_str()));
            }
            e
        });
    let retention = (
        connective_strategy(),
        prop::collection::vec(prop::sample::select(Retention::ALL.to_vec()), 1..3),
    )
        .prop_map(|(connective, values)| {
            let mut e = Expr::named("RETENTION").with_connective(connective);
            for r in values {
                e = e.with_child(Expr::named(r.as_str()));
            }
            e
        });
    let data = (
        connective_strategy(),
        prop::sample::select(vec![
            "#user.name",
            "#user.name.given",
            "#user.bdate",
            "#dynamic.cookies",
            "#dynamic.miscdata",
        ]),
        prop::collection::vec(prop::sample::select(Category::ALL.to_vec()), 0..3),
    )
        .prop_map(|(connective, reference, categories)| {
            let mut d = Expr::named("DATA").with_attr("ref", reference);
            if !categories.is_empty() {
                let mut cats = Expr::named("CATEGORIES").with_connective(connective);
                for c in categories {
                    cats = cats.with_child(Expr::named(c.as_str()));
                }
                d = d.with_child(cats);
            }
            Expr::named("DATA-GROUP").with_child(d)
        });
    prop_oneof![purpose, recipient, retention, data]
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(vocab_expr_strategy(), 1..3),
        connective_strategy().prop_filter("rule-level exact unsupported", |c| !c.is_exact()),
        prop::sample::select(vec![Behavior::Block, Behavior::Limited]),
    )
        .prop_map(|(inners, stmt_connective, behavior)| {
            let mut stmt = Expr::named("STATEMENT").with_connective(stmt_connective);
            for inner in inners {
                stmt = stmt.with_child(inner);
            }
            Rule::with_pattern(behavior, Expr::named("POLICY").with_child(stmt))
        })
}

fn ruleset_strategy() -> impl Strategy<Value = Ruleset> {
    prop::collection::vec(rule_strategy(), 1..4).prop_map(|mut rules| {
        let mut fallback = Rule::unconditional(Behavior::Request);
        fallback.otherwise = true;
        rules.push(fallback);
        Ruleset::new(rules)
    })
}

fn uses_exact(ruleset: &Ruleset) -> bool {
    fn expr_exact(e: &Expr) -> bool {
        e.connective.is_exact() || e.children.iter().any(expr_exact)
    }
    ruleset.rules.iter().flat_map(|r| r.pattern.iter()).any(expr_exact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: all engines agree on the verdict.
    #[test]
    fn all_engines_agree(policy in policy_strategy(), ruleset in ruleset_strategy()) {
        let mut server = PolicyServer::new();
        server.install_policy(&policy).unwrap();
        let reference = server
            .match_preference(&ruleset, Target::Policy("generated"), EngineKind::Native)
            .unwrap();
        for engine in [EngineKind::Sql, EngineKind::SqlGeneric, EngineKind::XQueryNative] {
            let got = server
                .match_preference(&ruleset, Target::Policy("generated"), engine)
                .unwrap();
            prop_assert_eq!(
                &got.verdict,
                &reference.verdict,
                "{:?} disagreed with native on policy:\n{}\npreference:\n{}",
                engine,
                policy.to_xml(),
                ruleset.to_xml()
            );
        }
        match server.match_preference(&ruleset, Target::Policy("generated"), EngineKind::XQueryXTable) {
            Ok(got) => prop_assert_eq!(
                &got.verdict,
                &reference.verdict,
                "XTABLE disagreed on policy:\n{}\npreference:\n{}",
                policy.to_xml(),
                ruleset.to_xml()
            ),
            Err(_) => prop_assert!(
                uses_exact(&ruleset),
                "XTABLE failed on a preference without exact connectives:\n{}",
                ruleset.to_xml()
            ),
        }
    }

    /// Matching is insensitive to whether the policy was installed from
    /// the model or from its XML serialization.
    #[test]
    fn xml_install_equals_model_install(policy in policy_strategy(), ruleset in ruleset_strategy()) {
        let mut a = PolicyServer::new();
        a.install_policy(&policy).unwrap();
        let mut b = PolicyServer::new();
        b.install_policy_xml(&policy.to_xml()).unwrap();
        let va = a.match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql).unwrap();
        let vb = b.match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql).unwrap();
        prop_assert_eq!(va.verdict, vb.verdict);
    }

    /// Index use never changes SQL verdicts (only their cost).
    #[test]
    fn indexes_do_not_change_verdicts(policy in policy_strategy(), ruleset in ruleset_strategy()) {
        let mut fast = PolicyServer::new();
        fast.install_policy(&policy).unwrap();
        let mut slow = PolicyServer::new();
        slow.install_policy(&policy).unwrap();
        slow.database_mut().set_use_indexes(false);
        let vf = fast.match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql).unwrap();
        let vs = slow.match_preference(&ruleset, Target::Policy("generated"), EngineKind::Sql).unwrap();
        prop_assert_eq!(vf.verdict, vs.verdict);
    }
}
