//! Robustness: no parser in the suite may panic on arbitrary input —
//! they must return errors. (A policy server parses attacker-supplied
//! preferences; a client parses site-supplied policies.)

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The XML parser never panics.
    #[test]
    fn xml_parser_total(input in "\\PC{0,200}") {
        let _ = p3p_suite::xmldom::parse_document(&input);
        let _ = p3p_suite::xmldom::parse_element(&input);
    }

    /// XML-ish input with markup characters.
    #[test]
    fn xml_parser_total_markupish(input in "[<>/a-zA-Z\"'= &;!?\\[\\]-]{0,120}") {
        let _ = p3p_suite::xmldom::parse_document(&input);
    }

    /// The SQL parser never panics.
    #[test]
    fn sql_parser_total(input in "\\PC{0,200}") {
        let _ = p3p_suite::minidb::sql::parse_statement(&input);
    }

    /// SQL-ish input with keywords and punctuation.
    #[test]
    fn sql_parser_total_sqlish(
        input in "(SELECT|FROM|WHERE|EXISTS|AND|OR|NOT|INSERT|VALUES|'|\\(|\\)|,|\\*|=|[a-z0-9_ .]){0,60}"
    ) {
        let _ = p3p_suite::minidb::sql::parse_statement(&input);
    }

    /// The XQuery parser never panics.
    #[test]
    fn xquery_parser_total(input in "\\PC{0,200}") {
        let _ = p3p_suite::xquery::parse_xquery(&input);
    }

    /// XQuery-ish input.
    #[test]
    fn xquery_parser_total_queryish(
        input in "(if|then|document|not|only|and|or|\\(|\\)|\\[|\\]|/|@|=|\"|<|>|[A-Za-z -]){0,80}"
    ) {
        let _ = p3p_suite::xquery::parse_xquery(&input);
    }

    /// Policy parsing never panics, even on well-formed XML that is not
    /// P3P.
    #[test]
    fn policy_parser_total(input in "\\PC{0,200}") {
        let _ = p3p_suite::policy::model::Policy::parse(&input);
    }

    /// APPEL parsing never panics.
    #[test]
    fn appel_parser_total(input in "\\PC{0,200}") {
        let _ = p3p_suite::appel::Ruleset::parse(&input);
    }

    /// Reference-file parsing never panics.
    #[test]
    fn reference_parser_total(input in "\\PC{0,200}") {
        let _ = p3p_suite::policy::reference::ReferenceFile::parse(&input);
    }

    /// Compact-policy header parsing is total (it has no failure mode).
    #[test]
    fn compact_header_total(input in "\\PC{0,100}") {
        let _ = p3p_suite::policy::compact::CompactPolicy::parse_header(&input);
    }

    /// Executing arbitrary SQL strings against a live database returns
    /// errors, never panics, and never corrupts later queries.
    #[test]
    fn database_execute_total(
        input in "(SELECT|CREATE TABLE|DROP|INSERT INTO|DELETE FROM|UPDATE|t|x|y|INT|VARCHAR|'v'|1|\\(|\\)|,|=| ){0,40}"
    ) {
        let mut db = p3p_suite::minidb::Database::new();
        db.execute("CREATE TABLE t (x INT, y VARCHAR)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'v')").unwrap();
        let _ = db.execute(&input);
        // The database still answers correctly afterwards.
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        prop_assert!(r.scalar().is_some());
    }
}
