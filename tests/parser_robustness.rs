//! Robustness: no parser in the suite may panic on arbitrary input —
//! they must return errors. (A policy server parses attacker-supplied
//! preferences; a client parses site-supplied policies.)
//!
//! Formerly `proptest` properties; the build environment has no
//! crates.io access, so each parser now runs over a deterministic
//! stream of pseudo-random inputs from an inline SplitMix64 generator.

struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (((self.next() as u128) * (n as u128)) >> 64) as usize
    }

    /// Arbitrary printable text (ASCII printable plus a sprinkling of
    /// multi-byte characters), up to `max_len` characters.
    fn printable(&mut self, max_len: usize) -> String {
        const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '🙂', '\u{2028}'];
        (0..self.index(max_len + 1))
            .map(|_| match self.index(100) {
                0..=93 => (b' ' + self.index(95) as u8) as char,
                _ => EXOTIC[self.index(EXOTIC.len())],
            })
            .collect()
    }

    /// Token soup from a fixed vocabulary, up to `max_tokens` tokens.
    fn soup(&mut self, tokens: &[&str], max_tokens: usize) -> String {
        (0..self.index(max_tokens + 1))
            .map(|_| tokens[self.index(tokens.len())])
            .collect()
    }
}

/// The XML parser never panics.
#[test]
fn xml_parser_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(200);
        let _ = p3p_suite::xmldom::parse_document(&input);
        let _ = p3p_suite::xmldom::parse_element(&input);
    }
}

/// XML-ish input with markup characters.
#[test]
fn xml_parser_total_markupish() {
    const TOKENS: &[&str] = &[
        "<", ">", "/", "a", "B", "xY", "\"", "'", "=", " ", "&", ";", "!", "?", "[", "]", "-",
        "<!--", "]]>", "<?", "&amp", "&#", "CDATA",
    ];
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.soup(TOKENS, 60);
        let _ = p3p_suite::xmldom::parse_document(&input);
    }
}

/// The SQL parser never panics.
#[test]
fn sql_parser_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(200);
        let _ = p3p_suite::minidb::sql::parse_statement(&input);
    }
}

/// SQL-ish input with keywords and punctuation.
#[test]
fn sql_parser_total_sqlish() {
    const TOKENS: &[&str] = &[
        "SELECT", "FROM", "WHERE", "EXISTS", "AND", "OR", "NOT", "INSERT", "VALUES", "'", "(", ")",
        ",", "*", "=", "t", "x1", "a.b", " ", "0",
    ];
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.soup(TOKENS, 30);
        let _ = p3p_suite::minidb::sql::parse_statement(&input);
    }
}

/// The XQuery parser never panics.
#[test]
fn xquery_parser_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(200);
        let _ = p3p_suite::xquery::parse_xquery(&input);
    }
}

/// XQuery-ish input.
#[test]
fn xquery_parser_total_queryish() {
    const TOKENS: &[&str] = &[
        "if", "then", "document", "not", "only", "and", "or", "(", ")", "[", "]", "/", "@", "=",
        "\"", "<", ">", "A", "bc", "X-Y", " ", "-",
    ];
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.soup(TOKENS, 40);
        let _ = p3p_suite::xquery::parse_xquery(&input);
    }
}

/// Policy parsing never panics, even on well-formed XML that is not
/// P3P.
#[test]
fn policy_parser_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(200);
        let _ = p3p_suite::policy::model::Policy::parse(&input);
    }
}

/// APPEL parsing never panics.
#[test]
fn appel_parser_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(200);
        let _ = p3p_suite::appel::Ruleset::parse(&input);
    }
}

/// Reference-file parsing never panics.
#[test]
fn reference_parser_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(200);
        let _ = p3p_suite::policy::reference::ReferenceFile::parse(&input);
    }
}

/// Compact-policy header parsing is total (it has no failure mode).
#[test]
fn compact_header_total() {
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.printable(100);
        let _ = p3p_suite::policy::compact::CompactPolicy::parse_header(&input);
    }
}

/// Executing arbitrary SQL strings against a live database returns
/// errors, never panics, and never corrupts later queries.
#[test]
fn database_execute_total() {
    const TOKENS: &[&str] = &[
        "SELECT",
        "CREATE TABLE",
        "DROP",
        "INSERT INTO",
        "DELETE FROM",
        "UPDATE",
        "t",
        "x",
        "y",
        "INT",
        "VARCHAR",
        "'v'",
        "1",
        "(",
        ")",
        ",",
        "=",
        " ",
    ];
    for seed in 0..512 {
        let mut rng = TestRng(seed);
        let input = rng.soup(TOKENS, 20);
        let mut db = p3p_suite::minidb::Database::new();
        db.execute("CREATE TABLE t (x INT, y VARCHAR)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'v')").unwrap();
        let _ = db.execute(&input);
        // The database still answers correctly afterwards.
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert!(r.scalar().is_some(), "seed {seed}: {input}");
    }
}
