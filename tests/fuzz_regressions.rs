//! Shrunk counterexamples found by the differential fuzzer
//! (`crates/fuzz`), checked in permanently. Each test is the fuzzer's
//! own `emit_repro` output (a policy corpus plus a ruleset fed to
//! [`p3p_fuzz::assert_no_divergence`]), renamed after the bug it
//! pinned down. If one of these starts failing, an engine or
//! translator has re-diverged on an input the fuzzer already minimized
//! once — fix the engine, don't touch the repro.

/// Shrunk by the fuzzer (seed scan, diverging path sql/loop).
///
/// The policy declares no ACCESS, and the rule negates ACCESS value
/// tests under `POLICY non-or`. The native engine treats "element not
/// found" as a failed match, so the outer negation succeeds; the
/// optimized SQL schema stores ACCESS as a nullable `policy.access`
/// column, where a bare `access = 'none'` evaluates to NULL and an
/// enclosing NOT left it NULL instead of true. Fixed by NULL-safe
/// `(col IS NOT NULL AND col = ...)` guards in `column_vocab_expr`.
#[test]
fn absent_access_column_stays_two_valued_under_negation() {
    p3p_fuzz::assert_no_divergence(
        &[r##"<POLICY name="fuzz-p000">
  <STATEMENT>
    <PURPOSE>
      <current/>
      <individual-decision/>
      <pseudo-analysis/>
    </PURPOSE>
    <RECIPIENT>
      <delivery required="opt-in"/>
    </RECIPIENT>
    <RETENTION>
      <stated-purpose/>
    </RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.business-info.postal.city"/>
      <DATA ref="#user.home-info.online.uri"/>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>"##],
        r##"<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY appel:connective="non-or">
      <ACCESS appel:connective="or">
        <none/>
      </ACCESS>
      <ACCESS appel:connective="non-or">
        <none/>
        <other-ident/>
      </ACCESS>
    </POLICY>
  </appel:RULE>
  <appel:OTHERWISE>
    <appel:RULE behavior="limited"/>
  </appel:OTHERWISE>
</appel:RULESET>"##,
    );
}

/// Shrunk by the fuzzer (seed scan, diverging path xquery_native/loop).
///
/// An `or-exact` connective directly on `<POLICY>` observes which
/// POLICY children are *absent*, but the document the XQuery engines
/// evaluate is the reconstructed explicit view, which carries only the
/// matchable children (ACCESS and STATEMENTs — no ENTITY/DISPUTES).
/// The exactness predicate passed vacuously there while the native
/// engine, which sees the full policy with its ENTITY, rejected it.
/// Fixed by declining POLICY-level exactness in the XQuery translation
/// with a typed `Unsupported`, like the SQL translators do.
#[test]
fn policy_level_exactness_is_declined_by_the_xquery_translation() {
    p3p_fuzz::assert_no_divergence(
        &[r##"<POLICY name="fuzz-p000">
  <ENTITY>
    <DATA-GROUP>
      <DATA ref="#business.name">fuzz-p000 Inc.</DATA>
    </DATA-GROUP>
  </ENTITY>
  <STATEMENT>
    <PURPOSE>
      <current/>
    </PURPOSE>
    <RECIPIENT>
      <ours/>
    </RECIPIENT>
    <RETENTION>
      <business-practices/>
    </RETENTION>
  </STATEMENT>
</POLICY>"##],
        r##"<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY appel:connective="or-exact">
      <STATEMENT/>
    </POLICY>
  </appel:RULE>
</appel:RULESET>"##,
    );
}

/// Shrunk by the fuzzer: seed 160, diverging path sql/loop.
///
/// The statement spreads its data over two DATA-GROUPs, and the rule's
/// `DATA-GROUP non-or` must be evaluated per group element: the group
/// holding only `dynamic.miscdata` contains no
/// `thirdparty.home-info.postal.city`, so the inner pattern matches it
/// and the enclosing `STATEMENT non-or` fails — the rule must not
/// fire. The optimized schema used to flatten all groups of a
/// statement into one row set, turning the inner `non-or` into a
/// statement-wide NOT EXISTS that fired the block rule. Fixed by the
/// `data_group_id` column and per-group witness correlation in
/// `data_group_expr`.
#[test]
fn data_group_boundaries_survive_the_optimized_schema() {
    p3p_fuzz::assert_no_divergence(
        &[r##"<POLICY name="fuzz-p001">
  <ENTITY>
    <DATA-GROUP>
      <DATA ref="#business.name">fuzz-p001 Inc.</DATA>
    </DATA-GROUP>
  </ENTITY>
  <STATEMENT>
    <PURPOSE>
      <telemarketing/>
    </PURPOSE>
    <RECIPIENT>
      <public/>
    </RECIPIENT>
    <RETENTION>
      <no-retention/>
    </RETENTION>
    <DATA-GROUP>
      <DATA ref="#dynamic.miscdata"/>
    </DATA-GROUP>
    <DATA-GROUP>
      <DATA ref="#thirdparty.home-info.postal.city"/>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>"##],
        r##"<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT appel:connective="non-or">
        <DATA-GROUP appel:connective="non-or">
          <DATA ref="#thirdparty.home-info.postal.city"/>
        </DATA-GROUP>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
</appel:RULESET>"##,
    );
}

/// An earlier shrink of the seed-160 case bottomed out at an *empty*
/// `<DATA-GROUP/>`, whose match semantics the optimized schema cannot
/// represent at all (a group's existence is witnessed only by its data
/// rows). That form is non-conforming P3P — the DTD says
/// `<!ELEMENT DATA-GROUP (DATA+)>` — so instead of a divergence repro
/// it is pinned here as a validation rejection, which also keeps the
/// shrinker from wandering back into the unrepresentable region.
#[test]
fn empty_data_group_is_rejected_by_validation() {
    let policy = p3p_policy::Policy::parse(
        r##"<POLICY name="p">
  <STATEMENT>
    <PURPOSE><current/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><no-retention/></RETENTION>
    <DATA-GROUP/>
  </STATEMENT>
</POLICY>"##,
    )
    .unwrap();
    let violations = p3p_policy::validate::validate(&policy);
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("at least one DATA")),
        "{violations:?}"
    );
}
