//! End-to-end telemetry across the matching pipeline: per-match
//! executor statistics (and their isolation between engines), spans,
//! the metrics registry, and EXPLAIN's index reporting against the
//! optimized-schema translation of a category rule.

use p3p_suite::appel::model::jane_preference;
use p3p_suite::minidb::exec::ExecStats;
use p3p_suite::minidb::explain;
use p3p_suite::policy::model::volga_policy;
use p3p_suite::server::appel2sql::translate_rule_optimized;
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::telemetry::{metrics, span};

fn server_with_volga() -> PolicyServer {
    let mut s = PolicyServer::new();
    s.install_policy(&volga_policy()).unwrap();
    s
}

/// A SQL match leaves its executor statistics in the outcome; a
/// following match on a non-SQL engine starts from a zeroed window, so
/// nothing bleeds across engines.
#[test]
fn match_outcome_stats_do_not_leak_across_engines() {
    let mut server = server_with_volga();
    let jane = jane_preference();
    let sql = server
        .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    assert!(
        sql.db_stats.index_probes > 0 && sql.db_stats.rows_scanned > 0,
        "SQL match must show executor work: {:?}",
        sql.db_stats
    );
    let native = server
        .match_preference(&jane, Target::Policy("volga"), EngineKind::Native)
        .unwrap();
    assert_eq!(
        native.db_stats,
        ExecStats::default(),
        "native match must not inherit the SQL match's stats"
    );
    let xml_store = server
        .match_preference(&jane, Target::Policy("volga"), EngineKind::XQueryNative)
        .unwrap();
    assert_eq!(xml_store.db_stats, ExecStats::default());
}

/// One match produces a `match` span with `translate`/`execute`
/// children and populates the per-engine latency and phase histograms,
/// visible in both renderings.
#[test]
fn match_records_spans_and_metrics() {
    let mut server = server_with_volga();
    server
        .match_preference(
            &jane_preference(),
            Target::Policy("volga"),
            EngineKind::SqlGeneric,
        )
        .unwrap();

    let spans = span::recent();
    let parent = spans
        .iter()
        .find(|s| {
            s.name == "match"
                && s.attrs
                    .iter()
                    .any(|(k, v)| *k == "engine" && v == "sql_generic")
        })
        .expect("match span recorded");
    for child in ["translate", "execute"] {
        assert!(
            spans
                .iter()
                .any(|s| s.name == child && s.parent == Some(parent.id)),
            "missing {child} child of the match span"
        );
    }

    let latency = metrics::histogram_with("p3p_match_latency_us", &[("engine", "sql_generic")]);
    assert!(latency.count() >= 1);
    for phase in ["translate", "execute", "verdict"] {
        let h = metrics::histogram_with(
            "p3p_match_phase_us",
            &[("engine", "sql_generic"), ("phase", phase)],
        );
        assert!(h.count() >= 1, "phase {phase} not observed");
    }
    assert!(metrics::counter_with("p3p_matches_total", &[("engine", "sql_generic")]).get() >= 1);
    assert!(metrics::counter("p3p_db_statements_total").get() >= 1);

    let text = metrics::render_text();
    assert!(
        text.contains("p3p_match_latency_us_bucket{engine=\"sql_generic\""),
        "{text}"
    );
    let json = metrics::snapshot_json();
    assert!(
        json.contains("p3p_match_latency_us{engine=\\\"sql_generic\\\"}"),
        "{json}"
    );
}

/// Join-planner and hash-join counters flow from the executor through
/// the database metrics into both registry renderings.
#[test]
fn join_planner_counters_are_exported() {
    use p3p_suite::minidb::Database;
    let mut db = Database::new();
    db.execute("CREATE TABLE mbig (k INT NOT NULL, v VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE msmall (k INT NOT NULL)").unwrap();
    for i in 0..40 {
        db.execute(&format!("INSERT INTO mbig VALUES ({}, 'v{i}')", i % 4))
            .unwrap();
    }
    db.execute("INSERT INTO msmall VALUES (1), (2)").unwrap();
    // jbig is larger and its join key is unindexed: the planner
    // reorders to drive from msmall and hash-joins mbig.
    db.query("SELECT b.v FROM mbig b, msmall s WHERE b.k = s.k")
        .unwrap();

    assert!(metrics::counter("p3p_db_join_hash_builds_total").get() >= 1);
    assert!(metrics::counter("p3p_db_join_hash_probes_total").get() >= 2);
    assert!(metrics::counter("p3p_db_planner_reorders_total").get() >= 1);

    let text = metrics::render_text();
    let json = metrics::snapshot_json();
    for name in [
        "p3p_db_join_hash_builds_total",
        "p3p_db_join_hash_probes_total",
        "p3p_db_planner_reorders_total",
    ] {
        assert!(text.contains(name), "{name} missing from Prometheus text");
        assert!(json.contains(name), "{name} missing from JSON snapshot");
    }
}

/// Installing a policy records shred timings per schema.
#[test]
fn install_records_shred_metrics() {
    let before = metrics::counter("p3p_policies_installed_total").get();
    let _server = server_with_volga();
    assert!(metrics::counter("p3p_policies_installed_total").get() > before);
    for schema in ["optimized", "generic"] {
        let h = metrics::histogram_with("p3p_shred_us", &[("schema", schema)]);
        assert!(h.count() >= 1, "schema {schema} shred not observed");
    }
}

/// The verdict cache exports hit/miss/eviction/invalidation counters
/// and the catalog epoch is a gauge, all visible in both renderings.
#[test]
fn verdict_cache_counters_and_epoch_gauge_are_exported() {
    let mut server = PolicyServer::new();
    server.set_verdict_cache_capacity(64);
    server.install_policy(&volga_policy()).unwrap();
    let jane = jane_preference();
    // Miss, then hit, then a removal-driven invalidation: every
    // counter family observes at least one event.
    let cold = server
        .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    assert!(!cold.verdict_cached);
    let warm = server
        .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    assert!(warm.verdict_cached);
    server.remove_policy("volga").unwrap();

    assert!(metrics::counter("p3p_verdict_cache_hits_total").get() >= 1);
    assert!(metrics::counter("p3p_verdict_cache_misses_total").get() >= 1);
    assert!(metrics::counter("p3p_verdict_cache_invalidations_total").get() >= 1);
    // The gauge is process-global and other tests install policies in
    // parallel, so assert it tracks *some* live epoch rather than this
    // server's exact value.
    assert!(metrics::gauge("p3p_catalog_epoch").get() >= 1);
    assert_eq!(server.catalog_epoch(), 2);

    let text = metrics::render_text();
    let json = metrics::snapshot_json();
    for name in [
        "p3p_verdict_cache_hits_total",
        "p3p_verdict_cache_misses_total",
        "p3p_verdict_cache_evictions_total",
        "p3p_verdict_cache_invalidations_total",
        "p3p_catalog_epoch",
    ] {
        assert!(text.contains(name), "{name} missing from Prometheus text");
        assert!(json.contains(name), "{name} missing from JSON snapshot");
    }
    assert!(
        text.contains("# TYPE p3p_catalog_epoch gauge"),
        "epoch must render as a gauge"
    );
}

/// A distributed sweep populates the `p3p_dist_*` job counters and the
/// worker gauge, and every family renders with exactly one HELP/TYPE
/// header in the Prometheus text page and appears in the JSON snapshot.
#[test]
fn distributed_sweep_counters_and_gauge_are_exported() {
    use p3p_suite::dist::{corpus_server, worker, SchedConfig, Scheduler, WorkerConfig};
    use p3p_suite::workload::Sensitivity;

    let server = corpus_server(5, 20).unwrap();
    let mut sched = Scheduler::bind("127.0.0.1:0", server, SchedConfig::default()).unwrap();
    let addr = sched.local_addr().to_string();
    // The worker side runs on a thread: same protocol, no subprocess.
    let worker = std::thread::spawn(move || {
        worker::run(
            &addr,
            &WorkerConfig {
                name: "telemetry-probe".into(),
                delay_ms: 0,
            },
        )
        .unwrap()
    });
    sched.accept_workers(1).unwrap();
    assert!(metrics::gauge("p3p_dist_workers_active").get() >= 1);

    let before = metrics::counter("p3p_dist_jobs_completed_total").get();
    let report = sched
        .sweep(&Sensitivity::Medium.ruleset(), EngineKind::Sql, 5)
        .unwrap();
    assert_eq!(report.verdicts.len(), 20);
    sched.shutdown();
    assert!(worker.join().unwrap() >= 1, "the worker served jobs");

    assert!(metrics::counter("p3p_dist_jobs_dispatched_total").get() >= 4);
    assert!(metrics::counter("p3p_dist_jobs_completed_total").get() >= before + 4);

    let text = metrics::render_text();
    let json = metrics::snapshot_json();
    for (family, kind) in [
        ("p3p_dist_jobs_dispatched_total", "counter"),
        ("p3p_dist_jobs_completed_total", "counter"),
        ("p3p_dist_jobs_requeued_total", "counter"),
        ("p3p_dist_heartbeat_misses_total", "counter"),
        ("p3p_dist_workers_active", "gauge"),
    ] {
        assert!(
            text.contains(family),
            "{family} missing from Prometheus text"
        );
        assert!(json.contains(family), "{family} missing from JSON snapshot");
        assert_eq!(
            text.matches(&format!("# HELP {family} ")).count(),
            1,
            "{family} must carry exactly one HELP line"
        );
        assert_eq!(
            text.matches(&format!("# TYPE {family} {kind}")).count(),
            1,
            "{family} must render as a {kind}"
        );
    }
}

/// The daemon's `GET /metrics` body is byte-identical to the metrics
/// registry's own Prometheus render, and every `p3p_http_*` family it
/// adds carries exactly one HELP and one TYPE header.
#[test]
fn http_metrics_endpoint_matches_registry_render() {
    use p3p_suite::serve::client::Client;
    use p3p_suite::serve::daemon::{Daemon, ServeConfig};

    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();
    let daemon = Daemon::bind("127.0.0.1:0", server, ServeConfig::default()).unwrap();
    let mut client = Client::connect(daemon.local_addr()).unwrap();

    // Put at least one request through a work endpoint so the
    // p3p_http_* families carry real samples, not just zeros.
    let ruleset = p3p_suite::workload::Sensitivity::Medium.ruleset().to_xml();
    let matched = client
        .request("POST", "/match?policy=volga", ruleset.as_bytes())
        .unwrap();
    assert_eq!(matched.status, 200, "{}", matched.body_string());

    // /metrics must serve exactly what the registry renders. Other
    // tests in this binary mutate the process-global registry in
    // parallel, so a fetch can race a counter increment — retry until
    // a quiet window gives byte-identity. The endpoint records no
    // metrics about itself, so repeated probes never diverge on their
    // own account.
    let mut identical = false;
    for _ in 0..100 {
        let response = client.request("GET", "/metrics", b"").unwrap();
        assert_eq!(response.status, 200);
        let rendered = metrics::render_text();
        if response.body == rendered.as_bytes() {
            identical = true;
            // The fetched page is a full registry render: check the
            // HTTP families' headers on the exact bytes served.
            for (family, kind) in [
                ("p3p_http_requests_total", "counter"),
                ("p3p_http_rejected_total", "counter"),
                ("p3p_http_parse_errors_total", "counter"),
                ("p3p_http_connections_total", "counter"),
                ("p3p_http_queue_depth", "gauge"),
                ("p3p_http_in_flight", "gauge"),
                ("p3p_http_draining", "gauge"),
                ("p3p_http_request_us", "histogram"),
            ] {
                assert_eq!(
                    rendered.matches(&format!("# HELP {family} ")).count(),
                    1,
                    "{family} must carry exactly one HELP line"
                );
                assert_eq!(
                    rendered
                        .matches(&format!("# TYPE {family} {kind}\n"))
                        .count(),
                    1,
                    "{family} must render as a {kind}"
                );
            }
            assert!(
                rendered.contains("p3p_http_requests_total{endpoint=\"match\",status=\"200\"}"),
                "the /match request must be visible in the served page"
            );
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        identical,
        "/metrics body never matched metrics::render_text() byte-for-byte"
    );

    daemon.begin_drain();
    daemon.join();
}

/// EXPLAIN on the optimized-schema translation of a category rule
/// names the indexes the executor would probe (satellite of the
/// paper's §5.4 index discussion).
#[test]
fn explain_names_probed_indexes_for_a_category_rule() {
    let mut server = server_with_volga();
    let pref = p3p_suite::appel::parse::parse_ruleset_str(
        "<appel:RULESET><appel:RULE behavior=\"block\"><POLICY><STATEMENT><DATA-GROUP>\
         <DATA><CATEGORIES appel:connective=\"or\"><uniqueid/></CATEGORIES></DATA>\
         </DATA-GROUP></STATEMENT></POLICY></appel:RULE></appel:RULESET>",
    )
    .unwrap();
    let sql = translate_rule_optimized(&pref.rules[0]).unwrap();
    // Running the match stages the applicable-policy view the
    // translated SQL selects from.
    server
        .match_preference(&pref, Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    let plan = explain(server.database(), &sql).unwrap();
    assert!(plan.contains("index nested loop"), "{plan}");
    assert!(plan.contains(" via "), "plan must name the index: {plan}");
    assert!(
        plan.contains("via idx_statement_fk"),
        "statement lookup probes the FK index: {plan}"
    );
}
