//! Integration test for the slow-query log: with a zero threshold the
//! log captures every SQL statement the match pipeline executes, and
//! every statement run inside the per-rule loop is attributed to the
//! APPEL rule it was translated from.
//!
//! The log, its threshold, and the rule context are process-global, so
//! this file holds the single test that drives them end to end (other
//! integration-test binaries are separate processes and cannot
//! interfere).

use p3p_suite::appel::model::jane_preference;
use p3p_suite::policy::model::volga_policy;
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::telemetry::slowlog;
use std::time::Duration;

#[test]
fn threshold_zero_captures_every_statement_with_rule_attribution() {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).unwrap();

    slowlog::set_threshold(Duration::ZERO);
    slowlog::clear();
    let outcome = server
        .match_preference(&jane_preference(), Target::Policy("volga"), EngineKind::Sql)
        .unwrap();
    slowlog::disable();
    assert_eq!(outcome.verdict.fired_rule, Some(2));

    let entries = slowlog::entries();
    // Jane's preference fires its third rule, so the loop executed the
    // translated query of rules 0, 1, and 2 — in order.
    let attributed: Vec<_> = entries.iter().filter(|r| r.rule_id.is_some()).collect();
    assert_eq!(attributed.len(), 3, "{entries:#?}");
    for (index, record) in attributed.iter().enumerate() {
        assert_eq!(record.rule_id, Some(index as u64), "{record:#?}");
        assert!(
            record.sql.trim_start().to_uppercase().starts_with("SELECT"),
            "rule queries are SELECTs: {}",
            record.sql
        );
        assert!(
            record.stats.rows_scanned + record.stats.index_probes > 0,
            "each translated query did observable work: {record:#?}"
        );
    }
    // The fired rule's query produced the verdict row.
    assert_eq!(attributed[2].stats.rows_output, 1, "{:#?}", attributed[2]);
    // The SQL engine binds the policy id as a parameter instead of
    // staging it, so every captured statement belongs to a rule.
    assert!(entries.iter().all(|r| r.rule_id.is_some()), "{entries:#?}");

    // Multi-table SELECTs additionally record the join strategy the
    // cost-based planner chose (same process-global log, so this stays
    // inside the single test).
    slowlog::set_threshold(Duration::ZERO);
    let join_sql =
        "SELECT s.statement_id FROM policy p, statement s WHERE s.policy_id = p.policy_id";
    server.database().query(join_sql).unwrap();
    slowlog::disable();
    let entry = slowlog::entries()
        .into_iter()
        .rev()
        .find(|r| r.sql == join_sql)
        .expect("join statement captured");
    let strategy = entry
        .join_strategy
        .expect("multi-table SELECT records its join strategy");
    assert!(strategy.contains("p: seq scan"), "{strategy}");
    assert!(
        strategy.contains("s: index nested loop on (policy_id) via idx_statement_fk"),
        "{strategy}"
    );
    // Single-table translated statements planned no join, so they
    // carry no strategy.
    assert!(entries.iter().all(|r| r.join_strategy.is_none()));
}
