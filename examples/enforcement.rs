//! Enforcement: making the site keep its own promises (paper §7).
//!
//! The paper closes with the future-work direction of "database
//! mechanisms for ensuring that the privacy policies are indeed being
//! followed" — the Privacy Constraint Validator of the companion
//! Hippocratic-databases work. Because the server-centric architecture
//! already shredded the policy into tables, the validator is a SQL
//! check away: every internal data access is matched against the
//! statements, consent is honored, and everything lands in an audit
//! log.
//!
//! ```sh
//! cargo run --example enforcement
//! ```

use p3p_suite::policy::model::volga_policy;
use p3p_suite::policy::vocab::{Purpose, Recipient};
use p3p_suite::server::enforce::{
    check_access, compliance_report, denied_accesses, install, record_opt_in, AccessRequest,
};
use p3p_suite::server::PolicyServer;

fn main() {
    let mut server = PolicyServer::new();
    server.install_policy(&volga_policy()).expect("installs");
    install(&mut server).expect("enforcement tables install");

    let access = |data: &str, purpose: Purpose, recipient: Recipient| AccessRequest {
        policy: "volga".to_string(),
        user: "jane".to_string(),
        data_ref: data.to_string(),
        purpose,
        recipient,
    };

    println!("Internal data accesses validated against Volga's published policy:\n");
    let attempts = [
        // The shipping department completes Jane's order: fine.
        (
            "shipping",
            access("user.home-info.postal", Purpose::Current, Recipient::Ours),
        ),
        // Fulfilment reads a single name leaf declared via the set ref.
        (
            "fulfilment",
            access("user.name.given", Purpose::Current, Recipient::Ours),
        ),
        // Marketing wants to email recommendations — opt-in required.
        (
            "marketing",
            access(
                "user.home-info.online.email",
                Purpose::Contact,
                Recipient::Ours,
            ),
        ),
        // A partner asks for purchase history: never declared.
        (
            "partner-api",
            access(
                "dynamic.miscdata",
                Purpose::IndividualAnalysis,
                Recipient::Unrelated,
            ),
        ),
        // Telemarketing was never in the policy at all.
        (
            "call-center",
            access(
                "user.home-info.postal",
                Purpose::Telemarketing,
                Recipient::Ours,
            ),
        ),
    ];
    for (who, request) in &attempts {
        let decision = check_access(&mut server, request).expect("check runs");
        println!(
            "  {who:<12} {} for {:<20} → {:?}",
            request.data_ref, request.purpose, decision
        );
    }

    // Jane opts in to recommendations; marketing retries.
    println!("\nJane opts in to `contact`; marketing retries:");
    record_opt_in(&mut server, "volga", "jane", Purpose::Contact).expect("consent records");
    let retry = check_access(
        &mut server,
        &access(
            "user.home-info.online.email",
            Purpose::Contact,
            Recipient::Ours,
        ),
    )
    .expect("check runs");
    println!("  marketing    → {retry:?}");
    assert!(retry.is_allowed());

    // The compliance officer's view.
    println!("\nCompliance report (aggregated from the access log by SQL):");
    for (decision, count) in compliance_report(&server).expect("report runs") {
        println!("  {decision:<22} {count}");
    }
    println!("\nDenied accesses needing review:");
    for (user, data, decision) in denied_accesses(&server).expect("report runs") {
        println!("  user {user}: {data} ({decision})");
    }
}
