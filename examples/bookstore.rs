//! A multi-policy site with a reference file (paper §2.3, §5.5).
//!
//! An online bookstore runs three services with different privacy
//! practices: the public catalog (anonymous browsing), checkout
//! (transactional data), and a marketing program (profiling). A P3P
//! reference file maps URI patterns to the right policy; the server
//! routes every request through `applicablePolicy()` before matching
//! the visitor's preference.
//!
//! ```sh
//! cargo run --example bookstore
//! ```

use p3p_suite::appel::model::Behavior;
use p3p_suite::policy::model::{
    DataGroup, DataRef, Entity, Policy, PurposeUse, RecipientUse, Statement,
};
use p3p_suite::policy::vocab::{Access, Category, Purpose, Recipient, Retention};
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::workload::Sensitivity;

fn catalog_policy() -> Policy {
    let mut p = Policy::new("catalog");
    p.entity = Some(Entity::named("Paperback Planet"));
    p.access = Some(Access::NonIdent);
    p.statements.push(Statement {
        consequence: Some("Anonymous clickstream keeps the catalog fast.".to_string()),
        purposes: vec![
            PurposeUse::always(Purpose::Current),
            PurposeUse::always(Purpose::Admin),
        ],
        recipients: vec![RecipientUse::always(Recipient::Ours)],
        retention: vec![Retention::NoRetention],
        data_groups: vec![DataGroup {
            base: None,
            data: vec![DataRef::new("dynamic.clickstream")],
        }],
        ..Statement::default()
    });
    p
}

fn checkout_policy() -> Policy {
    let mut p = Policy::new("checkout");
    p.entity = Some(Entity::named("Paperback Planet"));
    p.access = Some(Access::ContactAndOther);
    p.statements.push(Statement {
        consequence: Some("We need your address and payment data to ship books.".to_string()),
        purposes: vec![PurposeUse::always(Purpose::Current)],
        recipients: vec![
            RecipientUse::always(Recipient::Ours),
            RecipientUse::always(Recipient::Delivery),
        ],
        retention: vec![Retention::StatedPurpose],
        data_groups: vec![DataGroup {
            base: None,
            data: vec![
                DataRef::new("user.name"),
                DataRef::new("user.home-info.postal"),
                DataRef::new("dynamic.miscdata").with_categories([Category::Purchase]),
            ],
        }],
        ..Statement::default()
    });
    p
}

fn marketing_policy() -> Policy {
    let mut p = Policy::new("marketing");
    p.entity = Some(Entity::named("Paperback Planet"));
    p.access = Some(Access::All);
    p.statements.push(Statement {
        consequence: Some("Join the club and we profile your taste in books.".to_string()),
        purposes: vec![
            PurposeUse::always(Purpose::IndividualAnalysis),
            PurposeUse::always(Purpose::Contact),
            PurposeUse::always(Purpose::Telemarketing),
        ],
        recipients: vec![
            RecipientUse::always(Recipient::Ours),
            RecipientUse::always(Recipient::OtherRecipient),
        ],
        retention: vec![Retention::Indefinitely],
        data_groups: vec![DataGroup {
            base: None,
            data: vec![
                DataRef::new("user.home-info.online.email"),
                DataRef::new("user.bdate"),
                DataRef::new("dynamic.miscdata").with_categories([Category::Preference]),
            ],
        }],
        ..Statement::default()
    });
    p
}

const REFERENCE: &str = r#"
<META>
  <POLICY-REFERENCES>
    <POLICY-REF about="/p3p/policies.xml#checkout">
      <INCLUDE>/checkout/*</INCLUDE>
      <INCLUDE>/cart/*</INCLUDE>
    </POLICY-REF>
    <POLICY-REF about="/p3p/policies.xml#marketing">
      <INCLUDE>/club/*</INCLUDE>
      <EXCLUDE>/club/terms*</EXCLUDE>
    </POLICY-REF>
    <POLICY-REF about="/p3p/policies.xml#catalog">
      <INCLUDE>/*</INCLUDE>
    </POLICY-REF>
  </POLICY-REFERENCES>
</META>"#;

fn main() {
    let mut server = PolicyServer::new();
    for policy in [catalog_policy(), checkout_policy(), marketing_policy()] {
        server.install_policy(&policy).expect("installs");
    }
    server
        .install_reference_xml(REFERENCE)
        .expect("reference installs");

    let visitors = [
        ("cautious Carol", Sensitivity::High.ruleset()),
        ("moderate Mel", Sensitivity::Medium.ruleset()),
        ("breezy Bob", Sensitivity::VeryLow.ruleset()),
    ];
    let pages = [
        "/books/fiction/dune",
        "/cart/add?id=42",
        "/checkout/payment",
        "/club/join",
        "/club/terms.html",
    ];

    println!("Routing requests through the reference file (paper §2.3):\n");
    for page in pages {
        let policy_id = server
            .resolve(Target::Uri(page))
            .expect("a policy covers it");
        println!("{page}");
        println!("  covered by policy id {policy_id}");
        for (who, prefs) in &visitors {
            let outcome = server
                .match_preference(prefs, Target::Uri(page), EngineKind::Sql)
                .expect("match runs");
            let gloss = match outcome.verdict.behavior {
                Behavior::Request => "proceeds",
                Behavior::Block => "BLOCKED",
                Behavior::Limited => "limited",
                Behavior::Custom(_) => "custom",
            };
            println!(
                "  {who:<15} → {:<8} ({gloss}, {:?})",
                outcome.verdict.behavior.to_string(),
                outcome.convert + outcome.query
            );
        }
    }

    // Sanity: the marketing pages trip the cautious preference, the
    // catalog does not.
    let carol = Sensitivity::High.ruleset();
    let catalog = server
        .match_preference(&carol, Target::Uri("/books/index"), EngineKind::Sql)
        .unwrap();
    assert_eq!(catalog.verdict.behavior, Behavior::Request);
    let club = server
        .match_preference(&carol, Target::Uri("/club/join"), EngineKind::Sql)
        .unwrap();
    assert_eq!(club.verdict.behavior, Behavior::Block);
    println!("\nCautious visitors browse the catalog but never reach the club pages.");
}
