//! The site-owner's view: auditing policies against user preferences.
//!
//! The paper argues (§4.2) that a key advantage of the server-centric
//! architecture is that "site owners can refine their policies if they
//! know what policies have a conflict with the privacy preferences of
//! their users" — information a client-side deployment never yields.
//! This example runs the JRC preference suite against the synthetic
//! Fortune-1000 corpus, prints the conflict ranking, drills into *why*
//! with aggregate SQL over the shredded tables, and then fixes the
//! worst policy and shows the ranking improve.
//!
//! ```sh
//! cargo run --example policy_audit
//! ```

use p3p_suite::appel::model::Behavior;
use p3p_suite::policy::vocab::Required;
use p3p_suite::server::audit::{conflict_matrix, purpose_usage};
use p3p_suite::server::{EngineKind, PolicyServer};
use p3p_suite::workload::{corpus, Sensitivity};

fn main() {
    // Install the whole corpus.
    let mut server = PolicyServer::new();
    let policies = corpus(42);
    for p in &policies {
        server.install_policy(p).expect("installs");
    }

    let preferences: Vec<(String, _)> = Sensitivity::ALL
        .iter()
        .map(|s| (s.label().to_string(), s.ruleset()))
        .collect();

    // --- the conflict matrix ----------------------------------------
    let report = conflict_matrix(&mut server, &preferences, EngineKind::Sql).expect("audit runs");
    println!(
        "Audited {} policies x {} preference levels: {} blocked pairs\n",
        policies.len(),
        preferences.len(),
        report.blocked_pairs()
    );

    println!("Policies ranked by conflicts (top 8):");
    for (policy, conflicts) in report.policies_by_conflicts().into_iter().take(8) {
        println!("  {policy:<22} blocked by {conflicts} preference level(s)");
    }

    // --- the why: aggregate SQL over the shredded tables -------------
    println!("\nPurpose usage across the corpus (from the purpose table):");
    for (purpose, required, count) in purpose_usage(&server).expect("aggregate runs") {
        if required == "always" && count >= 3 {
            println!("  {count:>3} statements use `{purpose}` with required=\"always\"");
        }
    }

    // --- fix the worst offender --------------------------------------
    let (worst_name, before) = report.policies_by_conflicts().remove(0);
    println!("\nRefining `{worst_name}` (currently blocked by {before} levels):");
    let mut fixed = policies
        .iter()
        .find(|p| p.name == worst_name)
        .expect("worst policy is in the corpus")
        .clone();
    // The refinement the paper envisions: make every marketing purpose
    // opt-in instead of unconditional.
    for stmt in &mut fixed.statements {
        for pu in &mut stmt.purposes {
            if pu.required == Required::Always
                && pu.purpose != p3p_suite::policy::Purpose::Current
                && pu.purpose != p3p_suite::policy::Purpose::Admin
            {
                pu.required = Required::OptIn;
            }
        }
        // And stop sharing with undisclosed parties.
        stmt.recipients.retain(|r| {
            !matches!(
                r.recipient,
                p3p_suite::policy::Recipient::Unrelated | p3p_suite::policy::Recipient::Public
            )
        });
        if stmt.recipients.is_empty() {
            stmt.recipients
                .push(p3p_suite::policy::model::RecipientUse::always(
                    p3p_suite::policy::Recipient::Ours,
                ));
        }
    }
    server.remove_policy(&worst_name).expect("removal");
    server.install_policy(&fixed).expect("reinstall");

    let after_report =
        conflict_matrix(&mut server, &preferences, EngineKind::Sql).expect("audit runs");
    let after = after_report
        .policies_by_conflicts()
        .into_iter()
        .find(|(n, _)| n == &worst_name)
        .map(|(_, c)| c)
        .unwrap_or(0);
    println!("  after making marketing opt-in: blocked by {after} level(s) (was {before})");
    assert!(after <= before);

    // The audit is engine-independent: the native engine sees the same
    // conflicts (just slower).
    let native = conflict_matrix(&mut server, &preferences, EngineKind::Native).expect("audit");
    assert_eq!(
        native.blocked_pairs(),
        after_report.blocked_pairs(),
        "native and SQL audits agree"
    );
    println!(
        "\nTotal blocked pairs after refinement: {} (down from {}); verified with the native engine.",
        after_report.blocked_pairs(),
        report.blocked_pairs()
    );
    let _ = Behavior::Block; // (type referenced for readers of the docs)
}
