//! Quickstart: the paper's §2 walk-through, end to end.
//!
//! Volga the bookseller publishes the privacy policy of Figure 1; Jane
//! the privacy-conscious shopper carries the APPEL preference of
//! Figure 2. The server shreds Volga's policy into relational tables,
//! translates Jane's preference into SQL, and decides whether Jane's
//! browser should proceed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use p3p_suite::appel::model::{jane_preference, Behavior};
use p3p_suite::policy::model::volga_policy;
use p3p_suite::server::appel2sql::translate_rule_optimized;
use p3p_suite::server::{EngineKind, PolicyServer, Target};

fn main() {
    // --- the site side: install the policy --------------------------
    let policy = volga_policy();
    println!(
        "Volga's P3P policy (paper Figure 1):\n{}\n",
        policy.to_xml()
    );

    let mut server = PolicyServer::new();
    server.install_policy(&policy).expect("policy installs");
    println!(
        "Installed: {} policies, {} rows across {} relational tables\n",
        server.policy_names().len(),
        server.database().total_rows(),
        server.database().table_names().len(),
    );

    // --- the user side: the preference ------------------------------
    let jane = jane_preference();
    println!(
        "Jane's APPEL preference (paper Figure 2):\n{}\n",
        jane.to_xml()
    );

    // Show the translation the server runs (paper Figure 15 shape).
    println!("SQL translation of Jane's first rule:");
    println!(
        "{}\n",
        translate_rule_optimized(&jane.rules[0]).expect("translates")
    );

    // --- the match ---------------------------------------------------
    let outcome = server
        .match_preference(&jane, Target::Policy("volga"), EngineKind::Sql)
        .expect("match runs");
    println!(
        "Verdict: {} (rule {:?} fired; convert {:?}, query {:?})",
        outcome.verdict.behavior, outcome.verdict.fired_rule, outcome.convert, outcome.query
    );
    assert_eq!(outcome.verdict.behavior, Behavior::Request);
    println!("→ Volga's policy conforms to Jane's preferences; the request proceeds.\n");

    // The paper's counterfactual: were individual-decision not opt-in,
    // Jane's first rule would fire.
    let mut aggressive = volga_policy();
    aggressive.name = "volga-no-optin".to_string();
    aggressive.statements[1].purposes[0].required = p3p_suite::policy::Required::Always;
    server.install_policy(&aggressive).expect("installs");
    let blocked = server
        .match_preference(&jane, Target::Policy("volga-no-optin"), EngineKind::Sql)
        .expect("match runs");
    println!(
        "Without the opt-in, the verdict becomes: {} (rule {:?})",
        blocked.verdict.behavior, blocked.verdict.fired_rule
    );
    assert_eq!(blocked.verdict.behavior, Behavior::Block);
}
