//! The architectural decision matrix, live (paper §4, Figure 7).
//!
//! Runs the same preference against the same policy through every
//! engine the suite implements — the native APPEL engine
//! (client-centric baseline), SQL over the optimized and generic
//! schemas, XQuery via the XTABLE stand-in, and XQuery on the native
//! XML store — showing identical verdicts and the timing differences
//! that motivate the server-centric proposal.
//!
//! ```sh
//! cargo run --release --example engine_compare
//! ```

use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::workload::{corpus, Sensitivity};
use std::time::{Duration, Instant};

fn main() {
    let mut server = PolicyServer::new();
    let policies = corpus(42);
    for p in &policies {
        server.install_policy(p).expect("installs");
    }
    let names = server.policy_names();

    for level in [Sensitivity::High, Sensitivity::Low] {
        let ruleset = level.ruleset();
        println!(
            "Preference: {} ({} rules) vs {} policies",
            level.label(),
            ruleset.rule_count(),
            names.len()
        );
        println!(
            "{:<22} {:>12} {:>12} {:>10} {:>8}",
            "Engine", "convert", "query", "total", "verdicts"
        );
        let mut reference: Option<Vec<String>> = None;
        for engine in EngineKind::ALL {
            let mut convert = Duration::ZERO;
            let mut query = Duration::ZERO;
            let mut verdicts = Vec::new();
            let mut failed = 0usize;
            let t0 = Instant::now();
            for name in &names {
                match server.match_preference(&ruleset, Target::Policy(name), *engine) {
                    Ok(outcome) => {
                        convert += outcome.convert;
                        query += outcome.query;
                        verdicts.push(outcome.verdict.behavior.to_string());
                    }
                    Err(_) => {
                        failed += 1;
                        verdicts.push("?".to_string());
                    }
                }
            }
            let total = t0.elapsed();
            let summary = if failed > 0 {
                format!("{failed} failed")
            } else {
                let blocks = verdicts.iter().filter(|v| *v == "block").count();
                format!("{blocks} block")
            };
            println!(
                "{:<22} {:>12} {:>12} {:>10} {:>8}",
                engine.label(),
                format!("{convert:?}"),
                format!("{query:?}"),
                format!("{total:?}"),
                summary
            );
            // Every engine that completes must agree.
            if failed == 0 {
                match &reference {
                    None => reference = Some(verdicts),
                    Some(r) => assert_eq!(r, &verdicts, "{engine:?} disagreed"),
                }
            }
        }
        println!();
    }
    println!("All engines that completed produced identical verdicts.");
}
