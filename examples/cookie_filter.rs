//! Cookie filtering two ways: IE6-style compact policies at the client,
//! and cookie routing through the reference file at the server.
//!
//! The paper's §3.2 surveys Internet Explorer 6, which filters cookies
//! by evaluating the site's *compact policy* (a token summary sent in
//! the `P3P` response header) against a coarse privacy slider. The
//! server-centric architecture instead routes the cookie through the
//! reference file's COOKIE-INCLUDE patterns and matches the full
//! policy. This example runs both and compares their conclusions.
//!
//! ```sh
//! cargo run --example cookie_filter
//! ```

use p3p_suite::appel::model::Behavior;
use p3p_suite::policy::compact::{evaluate_cookie, CompactPolicy, CookiePreference, CookieVerdict};
use p3p_suite::server::{EngineKind, PolicyServer, Target};
use p3p_suite::workload::{corpus, Sensitivity};

fn main() {
    let policies = corpus(42);
    let mut server = PolicyServer::new();
    for p in &policies {
        server.install_policy(p).expect("installs");
    }
    // Each site scopes its session cookie to its policy.
    let mut reference = p3p_suite::policy::reference::ReferenceFile::default();
    for p in &policies {
        let mut r = p3p_suite::policy::reference::PolicyRef::new(format!("#{}", p.name));
        r.cookie_includes.push(format!("{}_session=*", p.name));
        reference.policy_refs.push(r);
    }
    server
        .install_reference(&reference)
        .expect("reference installs");

    // --- client side: IE6 compact policies ---------------------------
    println!("IE6-style compact policy filtering (paper §3.2):\n");
    println!(
        "{:<22} {:<46} {:>7} {:>7}",
        "Site", "P3P header (truncated)", "Medium", "High"
    );
    let mut blocked_medium = 0;
    let mut blocked_high = 0;
    for p in policies.iter().take(10) {
        let cp = CompactPolicy::from_policy(p);
        let header = cp.to_header();
        let medium = evaluate_cookie(&cp, CookiePreference::Medium);
        let high = evaluate_cookie(&cp, CookiePreference::High);
        blocked_medium += usize::from(medium == CookieVerdict::Block);
        blocked_high += usize::from(high == CookieVerdict::Block);
        println!(
            "{:<22} {:<46} {:>7} {:>7}",
            p.name,
            &header[..header.len().min(46)],
            fmt(medium),
            fmt(high)
        );
    }
    println!("\n(first 10 sites: {blocked_medium} blocked at Medium, {blocked_high} at High)\n");

    // --- server side: full-policy cookie matching --------------------
    println!("Server-side cookie matching through the reference file (§5.5):\n");
    let prefs = Sensitivity::High.ruleset();
    let mut agreements = 0usize;
    let mut total = 0usize;
    for p in &policies {
        let cookie = format!("{}_session=abc123", p.name);
        let outcome = server
            .match_preference(&prefs, Target::Cookie(&cookie), EngineKind::Sql)
            .expect("cookie resolves");
        let full_blocks = outcome.verdict.behavior == Behavior::Block;
        let compact_blocks =
            evaluate_cookie(&CompactPolicy::from_policy(p), CookiePreference::High)
                == CookieVerdict::Block;
        total += 1;
        if full_blocks == compact_blocks {
            agreements += 1;
        }
    }
    println!(
        "Full-policy (High preference) vs compact-policy (High slider): {agreements}/{total} agree."
    );
    println!("Disagreements are expected — the compact form discards statement structure,");
    println!("which is exactly why the paper proposes matching the full policy server-side.");

    // An unscoped cookie has no applicable policy.
    assert!(server
        .match_preference(&prefs, Target::Cookie("rogue_tracker=1"), EngineKind::Sql)
        .is_err());
    println!("\nUnscoped cookies (no COOKIE-INCLUDE pattern) are rejected outright.");
}

fn fmt(v: CookieVerdict) -> &'static str {
    match v {
        CookieVerdict::Accept => "accept",
        CookieVerdict::Block => "BLOCK",
    }
}
