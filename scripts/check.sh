#!/usr/bin/env bash
# Pre-submit gate: formatting, lints, release build, full test suite.
# Run from anywhere inside the repo: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench smoke (caching, single iteration)"
cargo bench -p p3p-bench --bench caching -- --test

echo "==> repro --table caching (warm-convert speedup floor)"
cargo run -q --release -p p3p-bench --bin repro -- --table caching > /dev/null

echo "==> bench smoke (bulk, single iteration)"
cargo bench -p p3p-bench --bench bulk -- --test

echo "==> bench smoke (columnar, single iteration)"
cargo bench -p p3p-bench --bench columnar -- --test

echo "==> repro --table bulk (bulk-over-loop + columnar-over-row speedup floors)"
cargo run -q --release -p p3p-bench --bin repro -- --table bulk > /dev/null
grep -q '"columnar_speedup"' BENCH_bulk.json

echo "==> bench smoke (join, single iteration)"
cargo bench -p p3p-bench --bench join -- --test

echo "==> repro --table join (planned-over-FROM-order speedup floor)"
cargo run -q --release -p p3p-bench --bin repro -- --table join > /dev/null

echo "==> fuzz smoke (50 fixed-seed differential cases, all engines)"
P3P_FUZZ_CASES=50 cargo run -q --release -p p3p-fuzz -- --seed 42

echo "==> repro --table fuzz (zero-divergence gate)"
P3P_FUZZ_CASES=50 cargo run -q --release -p p3p-bench --bin repro -- --table fuzz > /dev/null

echo "==> bench smoke (churn, single iteration)"
cargo bench -p p3p-bench --bench churn -- --test

echo "==> repro --table churn (verdict-cache hit-rate + cached-speedup floors)"
cargo run -q --release -p p3p-bench --bin repro -- --table churn > /dev/null
grep -q '"hit_rate"' BENCH_churn.json
grep -q '"speedup"' BENCH_churn.json
grep -q '"cache_invalidations"' BENCH_churn.json

echo "==> bench smoke (dist, single iteration)"
cargo bench -p p3p-bench --bench dist -- --test

echo "==> repro --table dist (kill-drill fold gate; 4-worker 2.5x floor on >=4 cores)"
cargo run -q --release -p p3p-bench --bin repro -- --table dist > /dev/null
grep -q '"fold_matches_single_process": true' BENCH_dist.json
grep -q '"speedup_vs_1"' BENCH_dist.json
grep -q '"scaling_gate_enforced"' BENCH_dist.json

echo "==> bench smoke (serve, single iteration)"
cargo bench -p p3p-bench --bench serve -- --test

echo "==> repro --table serve (sustained-QPS floor + zero-dropped-drain gate)"
P3P_SERVE_POLICIES=2000 P3P_SERVE_SECS=3 \
  cargo run -q --release -p p3p-bench --bin repro -- --table serve > /dev/null
grep -q '"qps_floor_met": true' BENCH_serve.json
grep -q '"drain_clean": true' BENCH_serve.json
grep -q '"lost": 0' BENCH_serve.json

echo "==> repro --table profile (profiler-off overhead gate, 1.10x)"
cargo run -q --release -p p3p-bench --bin repro -- --table profile > /dev/null
test -s BENCH_profile.json
grep -q '"off_overhead"' BENCH_profile.json

echo "==> repro --trace-out (Chrome trace-event schema sanity)"
cargo run -q --release -p p3p-bench --bin repro -- --trace-out target/trace.json > /dev/null
grep -q '"traceEvents"' target/trace.json
grep -q '"ph": "X"' target/trace.json
grep -q '"name": "corpus_shard"' target/trace.json

echo "All checks passed."
